"""Trace file I/O.

Format: JSON-lines. The first line is a header object; each following
line is one call record ``{"r": rank, "c": call, "p": params,
"s": t_start, "e": t_end}``. One file holds the whole run (records of
all ranks, grouped by rank in order), which keeps experiment artifacts
manageable while preserving the paper's per-process record structure.

Reading comes in two flavours:

* **strict** (default) — any malformed line raises
  :class:`~repro.errors.TraceError` pinpointing ``path:lineno``;
* **salvage** (``strict=False`` or :func:`read_trace_salvage`) — the
  valid prefix of a truncated or corrupt file is recovered and a
  :class:`SalvageReport` says exactly what was dropped. A process
  killed mid-campaign leaves a half-written last line; salvage mode
  turns that into the complete records that *did* make it to disk.

A corrupt *header* is unrecoverable in both modes — without ``nranks``
the records cannot be shaped into a :class:`~repro.trace.records.Trace`.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import TraceError
from repro.trace.records import Trace, TraceRecord, validate_trace

__all__ = [
    "SalvageReport",
    "read_trace",
    "read_trace_salvage",
    "validate_trace",
    "write_trace",
]

_FORMAT_VERSION = 1

#: Keys every record line must carry (params ``"p"`` is optional).
_REQUIRED_KEYS = ("r", "c", "s", "e")


def write_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Write a trace to ``path`` as JSON-lines."""
    header = {
        "format": _FORMAT_VERSION,
        "program": trace.program_name,
        "scenario": trace.scenario_name,
        "nranks": trace.nranks,
        "finish_times": trace.finish_times,
    }
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for rank, records in enumerate(trace.records):
            for rec in records:
                line = {
                    "r": rank,
                    "c": rec.call,
                    "p": dict(rec.params),
                    "s": rec.t_start,
                    "e": rec.t_end,
                }
                fh.write(json.dumps(line) + "\n")


@dataclass(frozen=True)
class SalvageReport:
    """What :func:`read_trace_salvage` recovered and what it dropped."""

    #: Record lines successfully recovered (header not counted).
    n_recovered: int
    #: Record lines dropped (the first bad line and everything after).
    n_dropped: int
    #: ``path:lineno: reason`` for the first bad line, or ``None`` if
    #: the whole file parsed cleanly.
    first_error: Optional[str] = None

    @property
    def clean(self) -> bool:
        """True when nothing was dropped."""
        return self.n_dropped == 0 and self.first_error is None

    def describe(self) -> str:
        if self.clean:
            return f"clean: all {self.n_recovered} record(s) read"
        return (
            f"salvaged {self.n_recovered} record(s), dropped "
            f"{self.n_dropped} line(s) from the first corrupt line on "
            f"({self.first_error})"
        )


def _parse_header(header_line: str, path: object) -> Trace:
    """Parse the header line into an empty, shaped :class:`Trace`."""
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}:1: bad header: {exc}") from exc
    if not isinstance(header, dict):
        raise TraceError(f"{path}:1: header is not a JSON object")
    if header.get("format") != _FORMAT_VERSION:
        raise TraceError(
            f"{path}:1: unsupported trace format {header.get('format')!r}"
        )
    try:
        nranks = int(header["nranks"])
    except KeyError as exc:
        raise TraceError(f"{path}:1: header missing 'nranks'") from exc
    except (TypeError, ValueError) as exc:
        raise TraceError(
            f"{path}:1: bad 'nranks' {header.get('nranks')!r}: {exc}"
        ) from exc
    if nranks < 1:
        raise TraceError(f"{path}:1: nranks must be >= 1, got {nranks}")
    try:
        finish_times = [float(t) for t in header.get("finish_times", [])]
    except (TypeError, ValueError) as exc:
        raise TraceError(f"{path}:1: bad 'finish_times': {exc}") from exc
    if any(not math.isfinite(t) or t < 0 for t in finish_times):
        raise TraceError(f"{path}:1: bad 'finish_times': {finish_times}")
    if finish_times and len(finish_times) != nranks:
        raise TraceError(
            f"{path}:1: finish_times has {len(finish_times)} entries "
            f"for {nranks} rank(s)"
        )
    return Trace(
        program_name=str(header.get("program", "")),
        scenario_name=str(header.get("scenario", "")),
        nranks=nranks,
        records=[[] for _ in range(nranks)],
        finish_times=finish_times,
    )


def _parse_record(line: str, nranks: int, where: str) -> tuple[int, TraceRecord]:
    """Parse one record line; raise :class:`TraceError` tagged ``where``."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"{where}: bad record: {exc}") from exc
    if not isinstance(obj, dict):
        raise TraceError(f"{where}: record is not a JSON object")
    missing = [k for k in _REQUIRED_KEYS if k not in obj]
    if missing:
        raise TraceError(f"{where}: record missing key(s) {missing}")
    try:
        rank = int(obj["r"])
        t_start = float(obj["s"])
        t_end = float(obj["e"])
    except (TypeError, ValueError) as exc:
        raise TraceError(f"{where}: non-numeric field: {exc}") from exc
    if not (math.isfinite(t_start) and math.isfinite(t_end)):
        raise TraceError(
            f"{where}: non-finite interval [{t_start}, {t_end}]"
        )
    if t_start < 0:
        raise TraceError(f"{where}: negative start time {t_start}")
    if not 0 <= rank < nranks:
        raise TraceError(
            f"{where}: rank {rank} out of range for {nranks} rank(s)"
        )
    params = obj.get("p", {})
    if not isinstance(params, dict):
        raise TraceError(f"{where}: params is not a JSON object")
    try:
        record = TraceRecord(
            call=str(obj["c"]),
            params=dict(params),
            t_start=t_start,
            t_end=t_end,
        )
    except TraceError as exc:
        raise TraceError(f"{where}: {exc}") from exc
    return rank, record


def read_trace(path: Union[str, os.PathLike], strict: bool = True) -> Trace:
    """Read a trace written by :func:`write_trace`.

    In strict mode (the default) any malformed record raises
    :class:`~repro.errors.TraceError` naming ``path:lineno``. With
    ``strict=False`` the valid prefix of a corrupt file is returned
    instead (see :func:`read_trace_salvage` for the accompanying
    report). Header corruption raises in both modes.
    """
    if not strict:
        trace, _report = read_trace_salvage(path)
        return trace
    with open(path, "r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise TraceError(f"{path}: empty trace file")
        trace = _parse_header(header_line, path)
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            rank, record = _parse_record(line, trace.nranks, f"{path}:{lineno}")
            trace.records[rank].append(record)
    return trace


def read_trace_salvage(
    path: Union[str, os.PathLike],
) -> tuple[Trace, SalvageReport]:
    """Recover the valid prefix of a truncated or corrupt trace file.

    Records are accepted up to (not including) the first malformed
    line; that line and everything after it are dropped, so the result
    is exactly the prefix that was durably written. On top of the
    per-record checks this enforces per-rank monotonicity and the
    header's finish-time bound — a record that jumps backwards in time
    or past its rank's finish time is treated as corruption — so the
    returned :class:`~repro.trace.records.Trace` always passes
    :func:`validate_trace` (a salvaged prefix may legitimately end
    *before* the recorded finish times).

    Raises :class:`~repro.errors.TraceError` only for an unreadable
    header (nothing can be recovered without one).
    """
    with open(path, "r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise TraceError(f"{path}: empty trace file")
        trace = _parse_header(header_line, path)
        n_recovered = 0
        n_dropped = 0
        first_error: Optional[str] = None
        prev_end = [0.0] * trace.nranks
        for lineno, line in enumerate(fh, start=2):
            stripped = line.strip()
            if not stripped:
                continue
            if first_error is not None:
                n_dropped += 1
                continue
            where = f"{path}:{lineno}"
            try:
                rank, record = _parse_record(stripped, trace.nranks, where)
                if record.t_start < prev_end[rank] - 1e-9:
                    raise TraceError(
                        f"{where}: rank {rank} goes backwards in time "
                        f"({record.t_start} < {prev_end[rank]})"
                    )
                if (
                    trace.finish_times
                    and record.t_end > trace.finish_times[rank] + 1e-9
                ):
                    raise TraceError(
                        f"{where}: rank {rank} call ends at {record.t_end} "
                        f"after its finish time {trace.finish_times[rank]}"
                    )
            except TraceError as exc:
                first_error = str(exc)
                n_dropped += 1
                continue
            trace.records[rank].append(record)
            prev_end[rank] = max(prev_end[rank], record.t_end)
            n_recovered += 1
    return trace, SalvageReport(
        n_recovered=n_recovered, n_dropped=n_dropped, first_error=first_error
    )
