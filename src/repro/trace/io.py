"""Trace file I/O.

Format: JSON-lines. The first line is a header object; each following
line is one call record ``{"r": rank, "c": call, "p": params,
"s": t_start, "e": t_end}``. One file holds the whole run (records of
all ranks, grouped by rank in order), which keeps experiment artifacts
manageable while preserving the paper's per-process record structure.
"""

from __future__ import annotations

import json
import os
from typing import Union

from repro.errors import TraceError
from repro.trace.records import Trace, TraceRecord

_FORMAT_VERSION = 1


def write_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Write a trace to ``path`` as JSON-lines."""
    header = {
        "format": _FORMAT_VERSION,
        "program": trace.program_name,
        "scenario": trace.scenario_name,
        "nranks": trace.nranks,
        "finish_times": trace.finish_times,
    }
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for rank, records in enumerate(trace.records):
            for rec in records:
                line = {
                    "r": rank,
                    "c": rec.call,
                    "p": dict(rec.params),
                    "s": rec.t_start,
                    "e": rec.t_end,
                }
                fh.write(json.dumps(line) + "\n")


def read_trace(path: Union[str, os.PathLike]) -> Trace:
    """Read a trace written by :func:`write_trace`."""
    with open(path, "r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise TraceError(f"{path}: empty trace file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: bad header: {exc}") from exc
        if header.get("format") != _FORMAT_VERSION:
            raise TraceError(
                f"{path}: unsupported trace format {header.get('format')!r}"
            )
        nranks = int(header["nranks"])
        trace = Trace(
            program_name=header.get("program", ""),
            scenario_name=header.get("scenario", ""),
            nranks=nranks,
            records=[[] for _ in range(nranks)],
            finish_times=[float(t) for t in header.get("finish_times", [])],
        )
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{lineno}: bad record: {exc}") from exc
            rank = int(obj["r"])
            if not 0 <= rank < nranks:
                raise TraceError(f"{path}:{lineno}: rank {rank} out of range")
            trace.records[rank].append(
                TraceRecord(
                    call=str(obj["c"]),
                    params={k: v for k, v in obj.get("p", {}).items()},
                    t_start=float(obj["s"]),
                    t_end=float(obj["e"]),
                )
            )
    return trace
