"""Trace statistics: the numbers behind Figure 2 and general sanity
reporting.

The paper validates skeletons by comparing the percentage of time spent
in MPI operations versus other computation for the application and each
skeleton (Figure 2); :func:`activity_breakdown` computes exactly that
split from a trace.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import TraceError
from repro.trace.records import Trace


@dataclass(frozen=True)
class ActivityBreakdown:
    """Time split between MPI operations and computation."""

    elapsed: float
    mpi_time: float
    compute_time: float

    @property
    def mpi_fraction(self) -> float:
        return self.mpi_time / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def compute_fraction(self) -> float:
        return self.compute_time / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def mpi_percent(self) -> float:
        return 100.0 * self.mpi_fraction

    @property
    def compute_percent(self) -> float:
        return 100.0 * self.compute_fraction


def activity_breakdown(trace: Trace) -> ActivityBreakdown:
    """Average MPI/compute split across ranks.

    Per rank, MPI time is the summed duration of recorded calls and
    compute time is everything else up to the rank's finish time; the
    fractions are then averaged over ranks (each rank ran for the same
    wall interval in an SPMD run, so this matches the paper's
    whole-application percentages).
    """
    if not trace.finish_times:
        raise TraceError("trace lacks finish times")
    total_elapsed = 0.0
    total_mpi = 0.0
    for rank in range(trace.nranks):
        elapsed = trace.finish_times[rank]
        mpi = sum(rec.duration for rec in trace.records[rank])
        if mpi > elapsed + 1e-6:
            raise TraceError(
                f"rank {rank}: MPI time {mpi} exceeds elapsed {elapsed}"
            )
        total_elapsed += elapsed
        total_mpi += mpi
    return ActivityBreakdown(
        elapsed=total_elapsed,
        mpi_time=total_mpi,
        compute_time=max(0.0, total_elapsed - total_mpi),
    )


def rank_breakdowns(trace: Trace) -> list[ActivityBreakdown]:
    """Per-rank MPI/compute split (load-imbalance diagnostics)."""
    if not trace.finish_times:
        raise TraceError("trace lacks finish times")
    out = []
    for rank in range(trace.nranks):
        elapsed = trace.finish_times[rank]
        mpi = sum(rec.duration for rec in trace.records[rank])
        out.append(
            ActivityBreakdown(
                elapsed=elapsed,
                mpi_time=mpi,
                compute_time=max(0.0, elapsed - mpi),
            )
        )
    return out


#: Histogram bucket boundaries for message sizes (bytes).
_SIZE_BUCKETS = (0, 64, 1024, 16 * 1024, 256 * 1024, 4 * 1024 * 1024)


def message_size_histogram(trace: Trace) -> dict[str, int]:
    """Counts of traced calls by payload-size bucket.

    Buckets follow common latency/bandwidth regimes: zero/tiny control
    messages, eager-range, rendezvous-range, and bulk.
    """
    labels = []
    for i, lo in enumerate(_SIZE_BUCKETS):
        if i + 1 < len(_SIZE_BUCKETS):
            labels.append(f"{lo}-{_SIZE_BUCKETS[i + 1] - 1}B")
        else:
            labels.append(f">={lo}B")
    histogram = {label: 0 for label in labels}
    for recs in trace.records:
        for rec in recs:
            nbytes = rec.nbytes
            idx = 0
            for i, lo in enumerate(_SIZE_BUCKETS):
                if nbytes >= lo:
                    idx = i
            histogram[labels[idx]] += 1
    return histogram


def imbalance_ratio(trace: Trace) -> float:
    """Max/min per-rank compute time — a simple load-balance figure
    (1.0 = perfectly balanced)."""
    breakdowns = rank_breakdowns(trace)
    computes = [b.compute_time for b in breakdowns]
    low = min(computes)
    if low <= 0:
        return float("inf") if max(computes) > 0 else 1.0
    return max(computes) / low


#: Calls whose peer field denotes a point-to-point destination.
_P2P_SEND_CALLS = frozenset({"MPI_Send", "MPI_Isend", "MPI_Sendrecv"})


def communication_matrix(trace: Trace) -> list[list[int]]:
    """Bytes sent between each (source, destination) rank pair.

    Only point-to-point traffic is attributed (collectives are
    decomposition-dependent); ``matrix[src][dst]`` is total payload
    bytes.
    """
    n = trace.nranks
    matrix = [[0] * n for _ in range(n)]
    for src in range(n):
        for rec in trace.records[src]:
            if rec.call in _P2P_SEND_CALLS:
                dst = int(rec.params.get("peer", -1))
                if 0 <= dst < n:
                    matrix[src][dst] += rec.nbytes
    return matrix


def render_communication_matrix(trace: Trace) -> str:
    """ASCII rendering of :func:`communication_matrix` (KB units)."""
    matrix = communication_matrix(trace)
    n = trace.nranks
    header = "src\\dst " + " ".join(f"{d:>9d}" for d in range(n))
    lines = [header]
    for src in range(n):
        cells = " ".join(
            f"{matrix[src][dst] / 1024:>8.1f}K" for dst in range(n)
        )
        lines.append(f"{src:>7d} {cells}")
    return "\n".join(lines)


def trace_stats(trace: Trace) -> dict:
    """General descriptive statistics of a trace (reporting/debugging)."""
    calls: Counter[str] = Counter()
    total_bytes = 0
    max_bytes = 0
    for recs in trace.records:
        for rec in recs:
            calls[rec.call] += 1
            nbytes = rec.nbytes
            total_bytes += nbytes
            max_bytes = max(max_bytes, nbytes)
    breakdown = activity_breakdown(trace)
    return {
        "program": trace.program_name,
        "scenario": trace.scenario_name,
        "nranks": trace.nranks,
        "elapsed": trace.elapsed,
        "n_calls": trace.n_calls(),
        "calls_by_type": dict(calls),
        "total_bytes": total_bytes,
        "max_message_bytes": max_bytes,
        "mpi_percent": breakdown.mpi_percent,
        "compute_percent": breakdown.compute_percent,
    }
