"""Trace record data model.

A :class:`TraceRecord` is one MPI call as the paper's profiling library
logs it: call name, call parameters (peer/root, bytes, tag, ...), and
start/end timestamps. A :class:`Trace` is the whole run: one record
list per rank plus run metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import TraceError

#: Slack for float round-trips when comparing recorded timestamps.
_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One recorded MPI call on one rank."""

    call: str
    params: Mapping[str, int]
    t_start: float
    t_end: float

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise TraceError(
                f"{self.call}: end {self.t_end} precedes start {self.t_start}"
            )

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def nbytes(self) -> int:
        return int(self.params.get("bytes", 0))

    @property
    def peer(self) -> int:
        """Peer rank for point-to-point, root for rooted collectives,
        -1 for non-rooted collectives."""
        if "peer" in self.params:
            return int(self.params["peer"])
        if "root" in self.params:
            return int(self.params["root"])
        return -1


@dataclass
class Trace:
    """All records of one run, per rank, plus metadata."""

    program_name: str
    scenario_name: str
    nranks: int
    records: list[list[TraceRecord]] = field(default_factory=list)
    finish_times: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.records:
            self.records = [[] for _ in range(self.nranks)]
        if len(self.records) != self.nranks:
            raise TraceError(
                f"{len(self.records)} record lists for {self.nranks} ranks"
            )

    @property
    def elapsed(self) -> float:
        if not self.finish_times:
            raise TraceError("trace has no finish times (run incomplete?)")
        return max(self.finish_times)

    def rank_records(self, rank: int) -> list[TraceRecord]:
        if not 0 <= rank < self.nranks:
            raise TraceError(f"rank {rank} out of range")
        return self.records[rank]

    def n_calls(self) -> int:
        """Total MPI calls across all ranks."""
        return sum(len(r) for r in self.records)

    def validate(self) -> None:
        """Raise :class:`TraceError` on the first structural problem.

        The full check list lives in :func:`validate_trace`, which
        returns *every* problem instead of raising.
        """
        issues = validate_trace(self)
        if issues:
            raise TraceError(issues[0])


def validate_trace(trace: Trace) -> list[str]:
    """Collect every structural problem in ``trace``.

    Returns a list of human-readable issue strings (empty means the
    trace is valid). Checks, per rank:

    * timestamps are finite and non-negative;
    * call intervals do not run backwards (``t_end >= t_start`` is
      already enforced by :class:`TraceRecord`, re-checked here
      defensively);
    * calls are monotonic — each starts no earlier than the previous
      one ended (within float slack);
    * the last call ends no later than the rank's finish time.

    Plus run-level checks: ``finish_times`` (when present) has exactly
    one finite, non-negative entry per rank.
    """
    issues: list[str] = []
    if trace.nranks < 1:
        issues.append(f"trace has nranks={trace.nranks}, expected >= 1")
    finish = trace.finish_times
    finish_ok = False
    if finish:
        if len(finish) != trace.nranks:
            issues.append(
                f"finish_times has {len(finish)} entries for "
                f"{trace.nranks} rank(s)"
            )
        else:
            finish_ok = True
        for rank, t in enumerate(finish):
            if not math.isfinite(t) or t < 0:
                issues.append(f"rank {rank}: bad finish time {t!r}")
                finish_ok = False
    for rank, recs in enumerate(trace.records):
        prev_end = 0.0
        for i, rec in enumerate(recs):
            where = f"rank {rank} call {i} ({rec.call})"
            if not (math.isfinite(rec.t_start) and math.isfinite(rec.t_end)):
                issues.append(
                    f"{where}: non-finite interval "
                    f"[{rec.t_start}, {rec.t_end}]"
                )
                continue
            if rec.t_start < 0:
                issues.append(f"{where}: negative start time {rec.t_start}")
            if rec.t_end < rec.t_start:
                issues.append(
                    f"{where}: end {rec.t_end} precedes start {rec.t_start}"
                )
            if rec.t_start < prev_end - _EPS:
                issues.append(
                    f"{where}: starts at {rec.t_start} before previous "
                    f"call ended at {prev_end}"
                )
            prev_end = max(prev_end, rec.t_end)
        if finish_ok and recs and recs[-1].t_end > finish[rank] + _EPS:
            issues.append(
                f"rank {rank}: last call ends at {recs[-1].t_end} after "
                f"rank finish time {finish[rank]}"
            )
    return issues
