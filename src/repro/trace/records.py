"""Trace record data model.

A :class:`TraceRecord` is one MPI call as the paper's profiling library
logs it: call name, call parameters (peer/root, bytes, tag, ...), and
start/end timestamps. A :class:`Trace` is the whole run: one record
list per rank plus run metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import TraceError


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One recorded MPI call on one rank."""

    call: str
    params: Mapping[str, int]
    t_start: float
    t_end: float

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise TraceError(
                f"{self.call}: end {self.t_end} precedes start {self.t_start}"
            )

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def nbytes(self) -> int:
        return int(self.params.get("bytes", 0))

    @property
    def peer(self) -> int:
        """Peer rank for point-to-point, root for rooted collectives,
        -1 for non-rooted collectives."""
        if "peer" in self.params:
            return int(self.params["peer"])
        if "root" in self.params:
            return int(self.params["root"])
        return -1


@dataclass
class Trace:
    """All records of one run, per rank, plus metadata."""

    program_name: str
    scenario_name: str
    nranks: int
    records: list[list[TraceRecord]] = field(default_factory=list)
    finish_times: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.records:
            self.records = [[] for _ in range(self.nranks)]
        if len(self.records) != self.nranks:
            raise TraceError(
                f"{len(self.records)} record lists for {self.nranks} ranks"
            )

    @property
    def elapsed(self) -> float:
        if not self.finish_times:
            raise TraceError("trace has no finish times (run incomplete?)")
        return max(self.finish_times)

    def rank_records(self, rank: int) -> list[TraceRecord]:
        if not 0 <= rank < self.nranks:
            raise TraceError(f"rank {rank} out of range")
        return self.records[rank]

    def n_calls(self) -> int:
        """Total MPI calls across all ranks."""
        return sum(len(r) for r in self.records)

    def validate(self) -> None:
        """Check per-rank monotonicity of call intervals."""
        for rank, recs in enumerate(self.records):
            prev_end = 0.0
            for rec in recs:
                if rec.t_start < prev_end - 1e-9:
                    raise TraceError(
                        f"rank {rank}: call {rec.call} starts at "
                        f"{rec.t_start} before previous call ended at {prev_end}"
                    )
                prev_end = rec.t_end
            if self.finish_times and recs:
                if recs[-1].t_end > self.finish_times[rank] + 1e-9:
                    raise TraceError(
                        f"rank {rank}: last call ends after rank finish time"
                    )
