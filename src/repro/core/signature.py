"""Execution-signature data model (paper §3.2).

A signature is the compressed form of a trace: per rank, a sequence of
nodes that are either :class:`EventStats` leaves (one communication
event with averaged parameters and its averaged preceding compute gap)
or :class:`LoopNode` loops whose body is again a node sequence. Loop
nesting is recursive, exactly the ``α[(β)²γ]³κ[α]²`` structure of the
paper's example.

Leaves keep their per-instance gap samples so the distribution-
preserving extension (``repro.ext.distribution``) can reproduce
variability instead of the mean — the paper's stated future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.errors import SignatureError

Node = Union["EventStats", "LoopNode"]


@dataclass
class EventStats:
    """A signature leaf: one (possibly merged) communication event."""

    call: str
    peer: int
    tag: int
    nreqs: int
    mean_bytes: float
    mean_gap: float
    mean_duration: float
    count: int = 1
    src: int = -1
    group: tuple = ()
    gap_samples: list[float] = field(default_factory=list)

    @staticmethod
    def from_event(ev) -> "EventStats":
        return EventStats(
            call=ev.call,
            peer=ev.peer,
            tag=ev.tag,
            nreqs=ev.nreqs,
            mean_bytes=ev.nbytes,
            mean_gap=ev.gap,
            mean_duration=ev.duration,
            count=1,
            src=ev.src,
            group=getattr(ev, "group", ()),
            gap_samples=[ev.gap],
        )

    def merged_with(self, other: "EventStats") -> "EventStats":
        """Position-wise merge of corresponding events from two
        repetitions ("an average value of execution time for the
        corresponding computation events in the sequence is used")."""
        if (self.call, self.peer, self.tag, self.nreqs, self.src,
                self.group) != (
            other.call, other.peer, other.tag, other.nreqs, other.src,
            other.group,
        ):
            raise SignatureError("merging incompatible events")
        n, m = self.count, other.count
        total = n + m
        return EventStats(
            call=self.call,
            peer=self.peer,
            tag=self.tag,
            nreqs=self.nreqs,
            mean_bytes=(self.mean_bytes * n + other.mean_bytes * m) / total,
            mean_gap=(self.mean_gap * n + other.mean_gap * m) / total,
            mean_duration=(self.mean_duration * n + other.mean_duration * m)
            / total,
            count=total,
            src=self.src,
            group=self.group,
            gap_samples=self.gap_samples + other.gap_samples,
        )

    @staticmethod
    def merge_run(stats: "list[EventStats]") -> "EventStats":
        """Merge a whole run of repetitions in one linear pass.

        Equivalent to left-folding :meth:`merged_with` over ``stats``
        (same weighted-mean recurrence in the same order, so the float
        results are bit-identical), but the gap samples are
        concatenated once instead of re-copied per step — the pairwise
        fold is O(reps²) in sample copies, which dominates loop folding
        for long-running loops.
        """
        first = stats[0]
        if len(stats) == 1:
            return first
        ident = (first.call, first.peer, first.tag, first.nreqs,
                 first.src, first.group)
        mean_bytes = first.mean_bytes
        mean_gap = first.mean_gap
        mean_duration = first.mean_duration
        count = first.count
        samples: list[float] = list(first.gap_samples)
        for other in stats[1:]:
            if (other.call, other.peer, other.tag, other.nreqs,
                    other.src, other.group) != ident:
                raise SignatureError("merging incompatible events")
            n, m = count, other.count
            total = n + m
            mean_bytes = (mean_bytes * n + other.mean_bytes * m) / total
            mean_gap = (mean_gap * n + other.mean_gap * m) / total
            mean_duration = (
                mean_duration * n + other.mean_duration * m
            ) / total
            count = total
            samples.extend(other.gap_samples)
        return EventStats(
            call=first.call,
            peer=first.peer,
            tag=first.tag,
            nreqs=first.nreqs,
            mean_bytes=mean_bytes,
            mean_gap=mean_gap,
            mean_duration=mean_duration,
            count=count,
            src=first.src,
            group=first.group,
            gap_samples=samples,
        )

    # -- tree measures -------------------------------------------------

    def n_leaves(self) -> int:
        return 1

    def expanded_length(self) -> int:
        return 1

    def total_time(self) -> float:
        """Mean contribution of one occurrence (gap + call time)."""
        return self.mean_gap + self.mean_duration


@dataclass
class LoopNode:
    """A repeated node sequence: ``count`` iterations of ``body``."""

    body: list[Node]
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SignatureError("loop count must be >= 1")
        if not self.body:
            raise SignatureError("loop body must not be empty")

    def n_leaves(self) -> int:
        return sum(node.n_leaves() for node in self.body)

    def expanded_length(self) -> int:
        return self.count * sum(node.expanded_length() for node in self.body)

    def iteration_time(self) -> float:
        """Mean time of one iteration of the body."""
        return sum(node.total_time() for node in self.body)

    def total_time(self) -> float:
        return self.count * self.iteration_time()


@dataclass
class RankSignature:
    """One rank's compressed execution record."""

    rank: int
    nodes: list[Node] = field(default_factory=list)
    tail_gap: float = 0.0

    def n_leaves(self) -> int:
        return sum(node.n_leaves() for node in self.nodes)

    def expanded_length(self) -> int:
        return sum(node.expanded_length() for node in self.nodes)

    def total_time(self) -> float:
        return sum(node.total_time() for node in self.nodes) + self.tail_gap

    def iter_leaves(self) -> Iterator[EventStats]:
        """All leaves in order (each once, ignoring repetition)."""
        stack: list[Node] = list(reversed(self.nodes))
        while stack:
            node = stack.pop()
            if isinstance(node, EventStats):
                yield node
            else:
                stack.extend(reversed(node.body))

    def iter_loops(self) -> Iterator[tuple[LoopNode, int]]:
        """All loop nodes with their *total* repetition count (the
        product of the counts of enclosing loops and their own)."""
        stack: list[tuple[Node, int]] = [(n, 1) for n in reversed(self.nodes)]
        while stack:
            node, outer = stack.pop()
            if isinstance(node, LoopNode):
                reps = outer * node.count
                yield node, reps
                stack.extend((child, reps) for child in reversed(node.body))


@dataclass
class Signature:
    """The whole application's execution signature."""

    program_name: str
    nranks: int
    ranks: list[RankSignature]
    threshold: float
    compression_ratio: float
    trace_events: int

    def __post_init__(self) -> None:
        if len(self.ranks) != self.nranks:
            raise SignatureError("rank signature count mismatch")

    def n_leaves(self) -> int:
        return sum(r.n_leaves() for r in self.ranks)

    def elapsed_estimate(self) -> float:
        """Per-rank serial time estimate (max over ranks)."""
        return max(r.total_time() for r in self.ranks)
