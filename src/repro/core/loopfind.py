"""Repeating-substring detection and loop-nest folding (paper §3.2).

The clustered trace is "a sequence of frequently repeating symbols";
this module finds tandem repeats and folds them into
:class:`~repro.core.signature.LoopNode` structures, turning e.g.
``αββγββγββγκαα`` into ``α[(β)²γ]³κ[α]²``.

Algorithm: repeated passes fold tandem repeats from the smallest
period upward. Small repeats (inner loops) collapse first, shrinking
the string so outer repeats appear at short periods; for cyclic
program traces this yields the same nests as the paper's
largest-match-first recursion, in near-linear time instead of
quadratic. Structural identity is tracked with interned signatures so
block comparison is integer-list comparison; a work budget bounds the
pathological (non-cyclic) case, where folding simply stops early and
the signature stays partially compressed — a compression-quality
fallback, never a correctness issue.

Two constant-factor accelerations keep the per-period rescans cheap
without changing any output:

* a Rabin–Karp rolling hash over the signature string filters repeat
  candidates in O(1) before the exact ``sigs[i:i+p]`` comparison runs
  (hash inequality proves the windows differ; hash equality is always
  confirmed exactly, so collisions cannot fold anything wrong);
* the work *budget* is still charged as if every candidate comparison
  ran element-by-element (the legacy cost model), so budget-exhaustion
  behaviour — and therefore the folded output — is independent of the
  hash filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.events import ExecEvent
from repro.core.signature import EventStats, LoopNode, Node
from repro.obs.metrics import get_metrics

#: Periods longer than this are not considered for folding. Iteration
#: bodies collapse to a handful of nodes once their inner loops fold,
#: so real traces never need long periods at the node level.
DEFAULT_MAX_PERIOD = 2048

#: Bound on total element comparisons across all passes.
DEFAULT_WORK_BUDGET = 200_000_000

#: Rolling-hash modulus/base (Mersenne prime 2^61-1; base coprime and
#: far from any symbol magnitude). Collisions are ~2^-61 per pair and
#: harmless anyway — every hash match is confirmed exactly.
_HASH_MOD = (1 << 61) - 1
_HASH_BASE = 1_000_003


@dataclass
class _Interner:
    """Maps structural descriptions to small ints ("signatures")."""

    table: dict = field(default_factory=dict)

    def loop_sig(self, body_sigs: tuple[int, ...], count: int) -> int:
        key = (body_sigs, count)
        sig = self.table.get(key)
        if sig is None:
            # Negative signatures for loops; leaf symbols are >= 0.
            sig = -(len(self.table) + 1)
            self.table[key] = sig
        return sig


def _prefix_hashes(sigs: list[int]) -> tuple[list[int], list[int]]:
    """Rabin–Karp prefix hashes of ``sigs`` plus base powers.

    ``hashes[i]`` is the polynomial hash of ``sigs[:i]``; the hash of
    any window then derives in O(1), so window equality can be
    *refuted* in O(1) instead of O(period).
    """
    n = len(sigs)
    hashes = [0] * (n + 1)
    pows = [1] * (n + 1)
    h = 0
    p = 1
    for i, s in enumerate(sigs):
        h = (h * _HASH_BASE + s) % _HASH_MOD
        hashes[i + 1] = h
        p = (p * _HASH_BASE) % _HASH_MOD
        pows[i + 1] = p
    return hashes, pows


def _windows_equal(
    hashes: list[int],
    pows: list[int],
    sigs: list[int],
    i: int,
    j: int,
    length: int,
) -> bool:
    """Exact equality of ``sigs[i:i+length]`` and ``sigs[j:j+length]``,
    with the rolling hash as a cheap refutation filter."""
    mod = _HASH_MOD
    pw = pows[length]
    if (hashes[i + length] - hashes[i] * pw) % mod != (
        hashes[j + length] - hashes[j] * pw
    ) % mod:
        return False
    return sigs[i : i + length] == sigs[j : j + length]


def _merge_run(run: list[Node]) -> Node:
    """Position-wise merge of one position across all repetitions.

    Equivalent to left-folding pairwise merges (identical float
    recurrences), but leaf gap samples concatenate once
    (:meth:`EventStats.merge_run`) instead of once per repetition.
    """
    head = run[0]
    if isinstance(head, EventStats):
        return EventStats.merge_run(run)
    assert all(
        isinstance(node, LoopNode) and node.count == head.count
        for node in run
    )
    body_len = len(head.body)
    merged = [
        _merge_run([node.body[p] for node in run]) for p in range(body_len)
    ]
    return LoopNode(body=merged, count=head.count)


def _fold_period(
    nodes: list[Node],
    sigs: list[int],
    period: int,
    interner: _Interner,
    hashes: list[int],
    pows: list[int],
) -> tuple[list[Node], list[int], bool, int]:
    """One left-to-right pass folding tandem repeats of ``period``.

    Returns (nodes, sigs, changed, comparisons_charged). ``hashes`` /
    ``pows`` must be the prefix hashes of ``sigs``.
    """
    n = len(nodes)
    out_nodes: list[Node] = []
    out_sigs: list[int] = []
    changed = False
    work = 0
    i = 0
    while i < n:
        if i + 2 * period <= n and _windows_equal(
            hashes, pows, sigs, i, i + period, period
        ):
            work += period
            reps = 2
            while i + (reps + 1) * period <= n and _windows_equal(
                hashes, pows, sigs, i, i + reps * period, period
            ):
                work += period
                reps += 1
            work += period
            # Merge the reps iterations position-wise into one body.
            body: list[Node] = [
                _merge_run([nodes[i + r * period + p] for r in range(reps)])
                for p in range(period)
            ]
            loop = LoopNode(body=body, count=reps)
            out_nodes.append(loop)
            out_sigs.append(
                interner.loop_sig(tuple(sigs[i : i + period]), reps)
            )
            i += reps * period
            changed = True
        else:
            work += 1 if i + 2 * period > n else period
            out_nodes.append(nodes[i])
            out_sigs.append(sigs[i])
            i += 1
    return out_nodes, out_sigs, changed, work


def fold_symbols(
    symbols: Sequence[int],
    events: Sequence[ExecEvent],
    max_period: int = DEFAULT_MAX_PERIOD,
    work_budget: int = DEFAULT_WORK_BUDGET,
) -> list[Node]:
    """Fold a clustered event stream into a loop-nest node list.

    ``symbols[i]`` is the cluster symbol of ``events[i]``.
    """
    if len(symbols) != len(events):
        raise ValueError("symbols and events must have equal length")
    nodes: list[Node] = [EventStats.from_event(ev) for ev in events]
    sigs: list[int] = list(symbols)
    interner = _Interner()
    budget = work_budget
    metrics = get_metrics()
    n_passes = 0
    n_folds = 0

    hashes, pows = _prefix_hashes(sigs)
    changed_any = True
    while changed_any and budget > 0:
        changed_any = False
        period = 1
        while period <= min(max_period, len(nodes) // 2) and budget > 0:
            before = len(nodes)
            nodes, sigs, changed, work = _fold_period(
                nodes, sigs, period, interner, hashes, pows
            )
            budget -= work
            n_passes += 1
            if changed:
                n_folds += before - len(nodes)
                changed_any = True
                hashes, pows = _prefix_hashes(sigs)
                # Re-scan small periods: folding may create new runs.
                period = 1
            else:
                period += 1
    if metrics.enabled:
        metrics.counter(
            "construct.fold_attempts", "fold passes attempted (one per period)"
        ).inc(n_passes)
        metrics.counter(
            "construct.folds", "node-count reduction from applied folds"
        ).inc(n_folds)
        metrics.counter(
            "construct.fold_work", "element comparisons spent folding"
        ).inc(work_budget - budget)
        if budget <= 0:
            metrics.counter(
                "construct.fold_budget_exhausted",
                "folds stopped early by the work budget",
            ).inc()
    return nodes
