"""Execution-signature (de)serialisation.

Signatures are the framework's durable artifact: trace once, store the
signature, generate skeletons of any size later without re-tracing
(see :func:`repro.ext.rescale.retarget_skeleton`). The format is a
single JSON document; loop nests serialise recursively.

Gap samples are optional in the file (``include_samples``) — they are
only needed for the distribution-preserving gap model and can dominate
file size for long traces.
"""

from __future__ import annotations

import json
import os
from typing import Union

from repro.core.signature import EventStats, LoopNode, Node, RankSignature, Signature
from repro.errors import SignatureError

_FORMAT_VERSION = 1


def _node_to_obj(node: Node, include_samples: bool) -> dict:
    if isinstance(node, LoopNode):
        return {
            "t": "loop",
            "n": node.count,
            "body": [_node_to_obj(c, include_samples) for c in node.body],
        }
    obj = {
        "t": "ev",
        "call": node.call,
        "peer": node.peer,
        "tag": node.tag,
        "nreqs": node.nreqs,
        "src": node.src,
        "bytes": node.mean_bytes,
        "gap": node.mean_gap,
        "dur": node.mean_duration,
        "count": node.count,
    }
    if node.group:
        obj["group"] = list(node.group)
    if include_samples and node.gap_samples:
        obj["gaps"] = node.gap_samples
    return obj


def _node_from_obj(obj: dict) -> Node:
    kind = obj.get("t")
    if kind == "loop":
        return LoopNode(
            body=[_node_from_obj(c) for c in obj["body"]],
            count=int(obj["n"]),
        )
    if kind == "ev":
        return EventStats(
            call=str(obj["call"]),
            peer=int(obj["peer"]),
            tag=int(obj["tag"]),
            nreqs=int(obj.get("nreqs", 0)),
            src=int(obj.get("src", -1)),
            mean_bytes=float(obj["bytes"]),
            mean_gap=float(obj["gap"]),
            mean_duration=float(obj["dur"]),
            count=int(obj.get("count", 1)),
            group=tuple(int(m) for m in obj.get("group", [])),
            gap_samples=[float(g) for g in obj.get("gaps", [])],
        )
    raise SignatureError(f"unknown signature node type {kind!r}")


def signature_to_dict(signature: Signature, include_samples: bool = True) -> dict:
    """Plain-dict form of a signature (JSON-ready)."""
    return {
        "format": _FORMAT_VERSION,
        "program": signature.program_name,
        "nranks": signature.nranks,
        "threshold": signature.threshold,
        "compression_ratio": signature.compression_ratio,
        "trace_events": signature.trace_events,
        "ranks": [
            {
                "rank": r.rank,
                "tail_gap": r.tail_gap,
                "nodes": [_node_to_obj(n, include_samples) for n in r.nodes],
            }
            for r in signature.ranks
        ],
    }


def signature_from_dict(obj: dict) -> Signature:
    """Inverse of :func:`signature_to_dict`."""
    if obj.get("format") != _FORMAT_VERSION:
        raise SignatureError(
            f"unsupported signature format {obj.get('format')!r}"
        )
    try:
        ranks = [
            RankSignature(
                rank=int(r["rank"]),
                nodes=[_node_from_obj(n) for n in r["nodes"]],
                tail_gap=float(r.get("tail_gap", 0.0)),
            )
            for r in obj["ranks"]
        ]
        return Signature(
            program_name=str(obj.get("program", "")),
            nranks=int(obj["nranks"]),
            ranks=ranks,
            threshold=float(obj.get("threshold", 0.0)),
            compression_ratio=float(obj.get("compression_ratio", 1.0)),
            trace_events=int(obj.get("trace_events", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SignatureError(f"malformed signature document: {exc}") from exc


def write_signature(
    signature: Signature,
    path: Union[str, os.PathLike],
    include_samples: bool = True,
) -> None:
    """Write a signature to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(signature_to_dict(signature, include_samples), fh)


def read_signature(path: Union[str, os.PathLike]) -> Signature:
    """Read a signature written by :func:`write_signature`."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            obj = json.load(fh)
        except json.JSONDecodeError as exc:
            raise SignatureError(f"{path}: not valid JSON: {exc}") from exc
    return signature_from_dict(obj)
