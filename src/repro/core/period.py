"""Periodicity diagnostics for clustered event streams.

An independent cross-check on the loop finder: estimate the dominant
period of a symbol stream by autocorrelation (the fraction of
positions where the stream equals itself shifted by ``lag``). For a
well-modelled cyclic application, the estimated period length should
divide — or be a small multiple of — the folded loop's body length.
Exposed for diagnostics and used in tests to validate the compressor
on every workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import SignatureError


@dataclass(frozen=True)
class PeriodEstimate:
    """Autocorrelation-based period guess."""

    period: int
    score: float         # match fraction at that lag, in [0, 1]
    candidates: tuple[tuple[int, float], ...]  # top (lag, score) pairs


def symbol_autocorrelation(symbols: Sequence[int], lag: int) -> float:
    """Fraction of positions where ``symbols[i] == symbols[i+lag]``."""
    n = len(symbols)
    if lag <= 0 or lag >= n:
        raise SignatureError("lag must be in (0, len)")
    matches = sum(
        1 for i in range(n - lag) if symbols[i] == symbols[i + lag]
    )
    return matches / (n - lag)


def estimate_period(
    symbols: Sequence[int],
    max_lag: Optional[int] = None,
    min_score: float = 0.8,
) -> Optional[PeriodEstimate]:
    """Smallest lag whose autocorrelation reaches ``min_score``.

    Returns ``None`` for streams with no strong periodicity (score
    below threshold at every lag) or streams too short to test.
    """
    n = len(symbols)
    if n < 4:
        return None
    if max_lag is None:
        max_lag = n // 2
    max_lag = min(max_lag, n - 1)

    scored: list[tuple[int, float]] = []
    best: Optional[tuple[int, float]] = None
    for lag in range(1, max_lag + 1):
        score = symbol_autocorrelation(symbols, lag)
        scored.append((lag, score))
        if score >= min_score:
            best = (lag, score)
            break
        if best is None or score > best[1]:
            best = (lag, score)
    if best is None or best[1] < min_score:
        return None
    top = tuple(sorted(scored, key=lambda t: -t[1])[:5])
    return PeriodEstimate(period=best[0], score=best[1], candidates=top)
