"""Trace-to-signature compression with iterative threshold search
(paper §3.2).

"Initially the similarity threshold is set to 0 and the clustering and
compression procedure is applied. If the degree of compression is less
than the desired ratio Q, the similarity threshold is increased
gradually until the desired compression of Q (or higher) is achieved."
The driver uses Q = K/2 (the paper's empirical rule) via
:func:`repro.core.construct.build_skeleton`, and enforces an upper
bound on the threshold so that very different events are never merged
(the paper observes every NAS case resolves below 0.20).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.core.clustering import ClusterSpace
from repro.core.distance import DimensionScales
from repro.core.events import trace_to_streams
from repro.core.loopfind import (
    DEFAULT_MAX_PERIOD,
    DEFAULT_WORK_BUDGET,
    fold_symbols,
)
from repro.core.signature import RankSignature, Signature
from repro.errors import SignatureError
from repro.obs.metrics import get_metrics
from repro.trace.records import Trace

#: Collective calls are globally ordered across ranks, so their
#: clustering is *coordinated*: the i-th collective occurrence gets the
#: same symbol on every rank (clustered once on the cross-rank mean
#: payload). Without this, per-rank first-fit clustering of slightly
#: varying payloads (e.g. IS's alltoallv totals) can fold ranks into
#: incompatible loop structures whose skeletons could not communicate.
_COLLECTIVE_CALLS = frozenset({
    "MPI_Barrier", "MPI_Bcast", "MPI_Reduce", "MPI_Allreduce",
    "MPI_Allgather", "MPI_Alltoall", "MPI_Alltoallv", "MPI_Gather",
    "MPI_Scatter", "MPI_Reduce_scatter", "MPI_Scan",
})

#: Shared collective symbols live in their own namespace, above any
#: per-rank point-to-point symbol.
_COLL_SYMBOL_BASE = 1 << 40


@dataclass(frozen=True)
class CompressionOptions:
    """Knobs of the threshold search and loop folding."""

    threshold_step: float = 0.01
    #: Where the threshold search starts (0 = only identical events
    #: cluster). Raised by the alignment-repair loop in construct.
    start_threshold: float = 0.0
    #: Upper bound so that "very different execution events are not
    #: combined" (§3.2; the paper saw < 0.20 suffice across the suite).
    max_threshold: float = 0.25
    #: Stop raising the threshold after this many consecutive steps
    #: with no compression improvement.
    patience: int = 10
    max_period: int = DEFAULT_MAX_PERIOD
    work_budget: int = DEFAULT_WORK_BUDGET


def _shared_collective_symbols(
    streams, threshold: float, scales: DimensionScales
) -> list[int] | None:
    """Coordinated symbols for the global collective sequence.

    Returns one symbol per collective occurrence (same for all ranks),
    or ``None`` when the ranks' collective sequences disagree (not an
    SPMD collective pattern — fall back to per-rank clustering)."""
    seqs = [
        [ev for ev in stream.events if ev.call in _COLLECTIVE_CALLS]
        for stream in streams
    ]
    ncoll = len(seqs[0])
    if any(len(q) != ncoll for q in seqs):
        return None
    for j in range(ncoll):
        first = seqs[0][j]
        for q in seqs[1:]:
            if q[j].call != first.call or q[j].peer != first.peer:
                return None
    space = ClusterSpace(threshold=threshold, scales=scales)
    symbols: list[int] = []
    nranks = len(seqs)
    for j in range(ncoll):
        mean_bytes = sum(q[j].nbytes for q in seqs) / nranks
        rep = dc_replace(seqs[0][j], nbytes=mean_bytes)
        symbols.append(_COLL_SYMBOL_BASE + space.assign(rep))
    return symbols


def _compress_at(
    streams, scales: DimensionScales, threshold: float, options: CompressionOptions
) -> tuple[list[RankSignature], float]:
    """Cluster + fold every rank at one threshold; return signatures
    and the aggregate compression ratio (trace length / signature
    length, in events)."""
    coll_symbols = _shared_collective_symbols(streams, threshold, scales)
    rank_sigs: list[RankSignature] = []
    total_events = 0
    total_leaves = 0
    for stream in streams:
        space = ClusterSpace(threshold=threshold, scales=scales)
        symbols: list[int] = []
        coll_idx = 0
        for ev in stream.events:
            if coll_symbols is not None and ev.call in _COLLECTIVE_CALLS:
                symbols.append(coll_symbols[coll_idx])
                coll_idx += 1
            else:
                symbols.append(space.assign(ev))
        nodes = fold_symbols(
            symbols,
            stream.events,
            max_period=options.max_period,
            work_budget=options.work_budget,
        )
        sig = RankSignature(rank=stream.rank, nodes=nodes, tail_gap=stream.tail_gap)
        rank_sigs.append(sig)
        total_events += len(stream.events)
        total_leaves += sig.n_leaves()
    if total_events == 0:
        raise SignatureError("trace contains no communication events")
    ratio = total_events / max(1, total_leaves)
    return rank_sigs, ratio


def compress_trace(
    trace: Trace,
    target_ratio: float = 1.0,
    options: CompressionOptions | None = None,
) -> Signature:
    """Compress ``trace`` into an execution signature.

    The similarity threshold starts at 0 and rises in
    ``options.threshold_step`` increments until the compression ratio
    reaches ``target_ratio`` or the threshold cap is hit (whichever
    comes first). With ``target_ratio`` <= the ratio achieved at
    threshold 0 (e.g. 1.0), only identical events are ever clustered.
    """
    options = options or CompressionOptions()
    if target_ratio < 1.0:
        raise SignatureError("target compression ratio must be >= 1")
    metrics = get_metrics()
    streams = trace_to_streams(trace)
    all_events = (ev for s in streams for ev in s.events)
    scales = DimensionScales.from_events(all_events)

    threshold = options.start_threshold
    best: tuple[list[RankSignature], float, float] | None = None
    stale = 0
    iterations = 0
    with metrics.timer("construct.compress", "trace -> signature wall time"):
        while True:
            iterations += 1
            rank_sigs, ratio = _compress_at(streams, scales, threshold, options)
            if best is None or ratio > best[1]:
                best = (rank_sigs, ratio, threshold)
                stale = 0
            else:
                stale += 1
            if ratio >= target_ratio:
                break
            if threshold >= options.max_threshold - 1e-12:
                break
            if stale >= options.patience:
                break
            threshold = min(
                options.max_threshold, threshold + options.threshold_step
            )

    rank_sigs, ratio, threshold = best
    if metrics.enabled:
        metrics.counter(
            "construct.threshold_iterations",
            "threshold-search steps across all compressions",
        ).inc(iterations)
        metrics.counter(
            "construct.compressions", "compress_trace invocations"
        ).inc()
        metrics.gauge(
            "construct.last_threshold", "threshold chosen by the last search"
        ).set(threshold)
        metrics.gauge(
            "construct.last_compression_ratio",
            "compression ratio achieved by the last search",
        ).set(ratio)
    return Signature(
        program_name=trace.program_name,
        nranks=trace.nranks,
        ranks=rank_sigs,
        threshold=threshold,
        compression_ratio=ratio,
        trace_events=sum(len(s.events) for s in streams),
    )
