"""Trace-to-signature compression with iterative threshold search
(paper §3.2).

"Initially the similarity threshold is set to 0 and the clustering and
compression procedure is applied. If the degree of compression is less
than the desired ratio Q, the similarity threshold is increased
gradually until the desired compression of Q (or higher) is achieved."
The driver uses Q = K/2 (the paper's empirical rule) via
:func:`repro.core.construct.build_skeleton`, and enforces an upper
bound on the threshold so that very different events are never merged
(the paper observes every NAS case resolves below 0.20).

Two search implementations share the paper's semantics exactly:

* ``search="linear"`` — the paper-literal sweep: re-cluster and re-fold
  the full trace at every fixed-increment step. Kept verbatim as the
  reference implementation so equivalence can be asserted forever.
* ``search="dendrogram"`` (default) — clustering outcomes are a step
  function of the threshold, so the sweep only *needs* new work where
  some assignment actually changes. Each probe returns a certified
  plateau (:class:`~repro.core.clustering.ThresholdBand`); grid steps
  inside a known plateau replay the cached ratio in O(1), and when a
  step does cross into a new plateau, loop folding is memoized per
  rank keyed by its band, so ranks whose symbols did not change skip
  folding entirely. The grid walk itself — first threshold reaching Q,
  patience, the ``max_threshold`` cap — is simulated step by step, so
  the chosen threshold and the returned signature are byte-identical
  to the linear sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as dc_replace

from repro.core.clustering import ClusterSpace, StreamDendrogram
from repro.core.distance import DimensionScales
from repro.core.events import ExecEvent, trace_to_streams
from repro.core.loopfind import (
    DEFAULT_MAX_PERIOD,
    DEFAULT_WORK_BUDGET,
    fold_symbols,
)
from repro.core.signature import RankSignature, Signature
from repro.errors import SignatureError
from repro.obs.metrics import get_metrics
from repro.trace.records import Trace

#: Collective calls are globally ordered across ranks, so their
#: clustering is *coordinated*: the i-th collective occurrence gets the
#: same symbol on every rank (clustered once on the cross-rank mean
#: payload). Without this, per-rank first-fit clustering of slightly
#: varying payloads (e.g. IS's alltoallv totals) can fold ranks into
#: incompatible loop structures whose skeletons could not communicate.
_COLLECTIVE_CALLS = frozenset({
    "MPI_Barrier", "MPI_Bcast", "MPI_Reduce", "MPI_Allreduce",
    "MPI_Allgather", "MPI_Alltoall", "MPI_Alltoallv", "MPI_Gather",
    "MPI_Scatter", "MPI_Reduce_scatter", "MPI_Scan",
})

#: Shared collective symbols live in their own namespace, above any
#: per-rank point-to-point symbol.
_COLL_SYMBOL_BASE = 1 << 40

_SEARCH_MODES = ("dendrogram", "linear")


@dataclass(frozen=True)
class CompressionOptions:
    """Knobs of the threshold search and loop folding."""

    threshold_step: float = 0.01
    #: Where the threshold search starts (0 = only identical events
    #: cluster). Raised by the alignment-repair loop in construct.
    start_threshold: float = 0.0
    #: Upper bound so that "very different execution events are not
    #: combined" (§3.2; the paper saw < 0.20 suffice across the suite).
    max_threshold: float = 0.25
    #: Stop raising the threshold after this many consecutive steps
    #: with no compression improvement.
    patience: int = 10
    max_period: int = DEFAULT_MAX_PERIOD
    work_budget: int = DEFAULT_WORK_BUDGET
    #: Threshold-search implementation: "dendrogram" (default) probes
    #: one cluster+fold pass per distinct clustering outcome;
    #: "linear" is the paper-literal fixed-increment sweep. Both
    #: produce byte-identical signatures (pinned in
    #: tests/test_compress_equivalence.py).
    search: str = "dendrogram"


def _collective_reps(streams) -> list[ExecEvent] | None:
    """Cross-rank mean-payload representatives of the global collective
    sequence (threshold-independent), or ``None`` when the ranks'
    collective sequences disagree (not an SPMD collective pattern —
    fall back to per-rank clustering)."""
    seqs = [
        [ev for ev in stream.events if ev.call in _COLLECTIVE_CALLS]
        for stream in streams
    ]
    ncoll = len(seqs[0])
    if any(len(q) != ncoll for q in seqs):
        return None
    for j in range(ncoll):
        first = seqs[0][j]
        for q in seqs[1:]:
            if q[j].call != first.call or q[j].peer != first.peer:
                return None
    nranks = len(seqs)
    reps: list[ExecEvent] = []
    for j in range(ncoll):
        mean_bytes = sum(q[j].nbytes for q in seqs) / nranks
        reps.append(dc_replace(seqs[0][j], nbytes=mean_bytes))
    return reps


def _shared_collective_symbols(
    streams, threshold: float, scales: DimensionScales
) -> list[int] | None:
    """Coordinated symbols for the global collective sequence.

    Returns one symbol per collective occurrence (same for all ranks),
    or ``None`` when the ranks' collective sequences disagree."""
    reps = _collective_reps(streams)
    if reps is None:
        return None
    space = ClusterSpace(threshold=threshold, scales=scales)
    return [_COLL_SYMBOL_BASE + space.assign(rep) for rep in reps]


def _compress_at(
    streams, scales: DimensionScales, threshold: float, options: CompressionOptions
) -> tuple[list[RankSignature], float, int]:
    """Cluster + fold every rank at one threshold; return signatures,
    the aggregate compression ratio (trace length / signature length,
    in events), and the trace length itself."""
    coll_symbols = _shared_collective_symbols(streams, threshold, scales)
    rank_sigs: list[RankSignature] = []
    total_events = 0
    total_leaves = 0
    for stream in streams:
        space = ClusterSpace(threshold=threshold, scales=scales)
        symbols: list[int] = []
        coll_idx = 0
        for ev in stream.events:
            if coll_symbols is not None and ev.call in _COLLECTIVE_CALLS:
                symbols.append(coll_symbols[coll_idx])
                coll_idx += 1
            else:
                symbols.append(space.assign(ev))
        nodes = fold_symbols(
            symbols,
            stream.events,
            max_period=options.max_period,
            work_budget=options.work_budget,
        )
        sig = RankSignature(rank=stream.rank, nodes=nodes, tail_gap=stream.tail_gap)
        rank_sigs.append(sig)
        total_events += len(stream.events)
        total_leaves += sig.n_leaves()
    if total_events == 0:
        raise SignatureError("trace contains no communication events")
    ratio = total_events / max(1, total_leaves)
    return rank_sigs, ratio, total_events


@dataclass
class _SearchResult:
    """Outcome of one threshold search, plus its effort accounting."""

    rank_sigs: list[RankSignature]
    ratio: float
    threshold: float
    #: Grid steps examined (what the paper-literal sweep would count).
    iterations: int
    total_events: int
    #: Full cluster+fold evaluations actually paid.
    probes: int
    fold_hits: int = 0
    fold_misses: int = 0
    #: Wall time spent materialising dendrogram bands (cluster passes).
    dendrogram_seconds: float = 0.0


def _search_linear(
    streams, scales, target_ratio: float, options: CompressionOptions
) -> _SearchResult:
    """The paper-literal fixed-increment sweep (reference
    implementation for equivalence pinning)."""
    threshold = options.start_threshold
    best: tuple[list[RankSignature], float, float] | None = None
    total_events = 0
    stale = 0
    iterations = 0
    while True:
        iterations += 1
        rank_sigs, ratio, total_events = _compress_at(
            streams, scales, threshold, options
        )
        if best is None or ratio > best[1]:
            best = (rank_sigs, ratio, threshold)
            stale = 0
        else:
            stale += 1
        if ratio >= target_ratio:
            break
        if threshold >= options.max_threshold - 1e-12:
            break
        if stale >= options.patience:
            break
        threshold = min(
            options.max_threshold, threshold + options.threshold_step
        )
    rank_sigs, ratio, threshold = best
    return _SearchResult(
        rank_sigs=rank_sigs,
        ratio=ratio,
        threshold=threshold,
        iterations=iterations,
        total_events=total_events,
        probes=iterations,
        fold_misses=iterations * len(streams),
    )


def _search_dendrogram(
    streams, scales, target_ratio: float, options: CompressionOptions
) -> _SearchResult:
    """Plateau-driven search, byte-identical to :func:`_search_linear`.

    The grid walk below is the *same loop* as the linear sweep; only
    the evaluation is memoized. A joint plateau — the intersection of
    every rank's band and the coordinated-collective band — certifies
    that all symbols (hence folds, hence the ratio) are constant, so
    grid steps inside it replay the cached result without touching the
    trace. Folding is additionally memoized per (rank, band) so a new
    plateau only re-folds the ranks whose symbols actually changed.
    """
    total_events = sum(len(s.events) for s in streams)
    if total_events == 0:
        raise SignatureError("trace contains no communication events")

    t_dendro = time.perf_counter()
    coll_reps = _collective_reps(streams)
    if coll_reps is None:
        coll_dendro = None
        rank_dendros = [StreamDendrogram(s.events, scales) for s in streams]
    else:
        coll_dendro = StreamDendrogram(
            coll_reps, scales, symbol_base=_COLL_SYMBOL_BASE
        )
        rank_dendros = [
            StreamDendrogram(
                [ev for ev in s.events if ev.call not in _COLLECTIVE_CALLS],
                scales,
            )
            for s in streams
        ]
    dendro_seconds = time.perf_counter() - t_dendro

    # (rank, rank band, collective band) -> (RankSignature, n_leaves).
    # Bands are identity-cached by their dendrogram, so they key the
    # fold memo directly: same bands => bit-identical symbols.
    fold_cache: dict[tuple, tuple[RankSignature, int]] = {}
    probes = 0
    fold_hits = 0
    fold_misses = 0
    # Current joint plateau: (lo, hi, rank_sigs, ratio).
    plateau: tuple[float, float, list[RankSignature], float] | None = None

    def evaluate(threshold: float) -> tuple[list[RankSignature], float]:
        nonlocal plateau, probes, fold_hits, fold_misses, dendro_seconds
        if plateau is not None and plateau[0] <= threshold < plateau[1]:
            return plateau[2], plateau[3]
        probes += 1
        t0 = time.perf_counter()
        coll_band = (
            coll_dendro.band_at(threshold) if coll_dendro is not None else None
        )
        bands = [dendro.band_at(threshold) for dendro in rank_dendros]
        dendro_seconds += time.perf_counter() - t0
        lo = 0.0 if coll_band is None else coll_band.lo
        hi = float("inf") if coll_band is None else coll_band.hi
        rank_sigs: list[RankSignature] = []
        total_leaves = 0
        for stream, band in zip(streams, bands):
            if band.lo > lo:
                lo = band.lo
            if band.hi < hi:
                hi = band.hi
            key = (stream.rank, band, coll_band)
            cached = fold_cache.get(key)
            if cached is None:
                fold_misses += 1
                if coll_band is None:
                    symbols = band.symbols
                else:
                    symbols = []
                    p2p = iter(band.symbols)
                    coll = iter(coll_band.symbols)
                    for ev in stream.events:
                        if ev.call in _COLLECTIVE_CALLS:
                            symbols.append(next(coll))
                        else:
                            symbols.append(next(p2p))
                nodes = fold_symbols(
                    symbols,
                    stream.events,
                    max_period=options.max_period,
                    work_budget=options.work_budget,
                )
                sig = RankSignature(
                    rank=stream.rank, nodes=nodes, tail_gap=stream.tail_gap
                )
                cached = (sig, sig.n_leaves())
                fold_cache[key] = cached
            else:
                fold_hits += 1
            rank_sigs.append(cached[0])
            total_leaves += cached[1]
        ratio = total_events / max(1, total_leaves)
        plateau = (lo, hi, rank_sigs, ratio)
        return rank_sigs, ratio

    # The legacy grid walk, verbatim — only the evaluation is cached.
    threshold = options.start_threshold
    best: tuple[list[RankSignature], float, float] | None = None
    stale = 0
    iterations = 0
    while True:
        iterations += 1
        rank_sigs, ratio = evaluate(threshold)
        if best is None or ratio > best[1]:
            best = (rank_sigs, ratio, threshold)
            stale = 0
        else:
            stale += 1
        if ratio >= target_ratio:
            break
        if threshold >= options.max_threshold - 1e-12:
            break
        if stale >= options.patience:
            break
        threshold = min(
            options.max_threshold, threshold + options.threshold_step
        )
    rank_sigs, ratio, threshold = best
    return _SearchResult(
        rank_sigs=rank_sigs,
        ratio=ratio,
        threshold=threshold,
        iterations=iterations,
        total_events=total_events,
        probes=probes,
        fold_hits=fold_hits,
        fold_misses=fold_misses,
        dendrogram_seconds=dendro_seconds,
    )


def compress_trace(
    trace: Trace,
    target_ratio: float = 1.0,
    options: CompressionOptions | None = None,
) -> Signature:
    """Compress ``trace`` into an execution signature.

    The similarity threshold starts at 0 and rises in
    ``options.threshold_step`` increments until the compression ratio
    reaches ``target_ratio`` or the threshold cap is hit (whichever
    comes first). With ``target_ratio`` <= the ratio achieved at
    threshold 0 (e.g. 1.0), only identical events are ever clustered.
    ``options.search`` selects how the sweep is *executed* — the
    default dendrogram search and the paper-literal linear sweep pick
    the same threshold and return byte-identical signatures.
    """
    options = options or CompressionOptions()
    if target_ratio < 1.0:
        raise SignatureError("target compression ratio must be >= 1")
    if options.search not in _SEARCH_MODES:
        raise SignatureError(
            f"unknown threshold search {options.search!r} "
            f"(expected one of {', '.join(_SEARCH_MODES)})"
        )
    metrics = get_metrics()
    streams = trace_to_streams(trace)
    all_events = (ev for s in streams for ev in s.events)
    scales = DimensionScales.from_events(all_events)

    with metrics.timer("construct.compress", "trace -> signature wall time"):
        if options.search == "linear":
            res = _search_linear(streams, scales, target_ratio, options)
        else:
            res = _search_dendrogram(streams, scales, target_ratio, options)

    if metrics.enabled:
        metrics.counter(
            "construct.threshold_iterations",
            "threshold-search steps across all compressions",
        ).inc(res.iterations)
        metrics.counter(
            "construct.threshold_probes",
            "full cluster+fold evaluations paid (vs. threshold_iterations "
            "grid steps the linear sweep would recompute)",
        ).inc(res.probes)
        metrics.counter(
            "construct.compressions", "compress_trace invocations"
        ).inc()
        metrics.counter(
            "construct.fold_cache_hits",
            "per-rank folds reused from the band-keyed memo",
        ).inc(res.fold_hits)
        metrics.counter(
            "construct.fold_cache_misses",
            "per-rank folds actually computed",
        ).inc(res.fold_misses)
        folds_seen = res.fold_hits + res.fold_misses
        if folds_seen:
            metrics.gauge(
                "construct.fold_cache_hit_ratio",
                "fold-memo hit ratio of the last threshold search",
            ).set(res.fold_hits / folds_seen)
        metrics.histogram(
            "construct.dendrogram_seconds",
            "wall time spent materialising dendrogram bands",
        ).observe(res.dendrogram_seconds)
        metrics.gauge(
            "construct.last_threshold", "threshold chosen by the last search"
        ).set(res.threshold)
        metrics.gauge(
            "construct.last_compression_ratio",
            "compression ratio achieved by the last search",
        ).set(res.ratio)
    return Signature(
        program_name=trace.program_name,
        nranks=trace.nranks,
        ranks=res.rank_sigs,
        threshold=res.threshold,
        compression_ratio=res.ratio,
        trace_events=res.total_events,
    )
