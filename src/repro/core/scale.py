"""Signature scaling by factor K (paper §3.3).

The four construction steps:

1. Top-level loop iteration counts are divided by K; the division
   remainder becomes part of the *unreduced* signature.
2. Groups of K identical operations in the unreduced part collapse to
   a single full-scale occurrence.
3. Every remaining unreduced operation is scaled down by K: compute
   durations divide by K, message byte counts divide by K. (Message
   *latency* cannot be scaled this way — the paper's §3.3 caveat — and
   our simulator charges it in full, so this error source is live.)
4. Conversion to a program is :mod:`repro.core.skeleton` (runnable)
   and :mod:`repro.core.codegen` (synthetic C).

Implementation note: rather than emitting the r = n mod K remainder
iterations as r unrolled copies that step 3 would each shrink by 1/K,
we emit one copy scaled by r/K — the same aggregate work and traffic
with far fewer operations. Step 2's group collapsing is applied to
runs of identical unreduced leaves the same way (m occurrences →
⌊m/K⌋ full + one (m mod K)/K-scaled occurrence).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.core.signature import EventStats, LoopNode, Node, RankSignature, Signature
from repro.errors import SkeletonError

#: Remainder fractions below this are dropped (they would produce
#: sub-microsecond compute and sub-byte messages).
_MIN_FRACTION = 1e-6

#: Strategy for scaling a communication payload: maps (leaf, fraction)
#: to the scaled byte count. The paper's method is plain
#: multiplication (``naive_comm_scaler``); the latency-aware extension
#: (:mod:`repro.ext.latency_aware`) compensates for the unscalable
#: latency component.
CommScaler = Callable[[EventStats, float], float]


def naive_comm_scaler(leaf: EventStats, fraction: float) -> float:
    """The paper's §3.3 reduction: bytes scale linearly with 1/K."""
    return leaf.mean_bytes * fraction


def _scaled_leaf(
    leaf: EventStats, fraction: float, comm_scaler: CommScaler
) -> EventStats:
    """A copy of ``leaf`` with work and payload scaled by ``fraction``."""
    return replace(
        leaf,
        mean_bytes=comm_scaler(leaf, fraction),
        mean_gap=leaf.mean_gap * fraction,
        mean_duration=leaf.mean_duration * fraction,
        gap_samples=[g * fraction for g in leaf.gap_samples],
    )


def _scale_node(node: Node, fraction: float, comm_scaler: CommScaler) -> Node:
    if isinstance(node, EventStats):
        return _scaled_leaf(node, fraction, comm_scaler)
    # Scaling a whole loop: reduce its count proportionally (keeps
    # per-iteration semantics intact); once fewer than one iteration
    # remains, keep a single iteration and push the residual fraction
    # into the body instead.
    scaled_count = node.count * fraction
    if scaled_count >= 1.0:
        return LoopNode(body=list(node.body), count=int(round(scaled_count)))
    return LoopNode(
        body=[_scale_node(child, scaled_count, comm_scaler) for child in node.body],
        count=1,
    )


def _leaf_identity(leaf: EventStats) -> tuple:
    return (leaf.call, leaf.peer, leaf.tag, leaf.nreqs, leaf.src,
            round(leaf.mean_bytes, 6))


@dataclass
class ScaledSignature:
    """A signature after scaling: ready for program generation."""

    base_name: str
    nranks: int
    K: float
    K_int: int
    ranks: list[RankSignature]
    #: Estimated per-rank serial time of the skeleton.
    estimate: float = 0.0


def _scale_rank(
    rank_sig: RankSignature, K: float, K_int: int, comm_scaler: CommScaler
) -> RankSignature:
    out: list[Node] = []
    unreduced: list[EventStats] = []  # run of identical leaves pending step 2

    def flush_run() -> None:
        """Apply step 2 + 3 to the pending run of identical leaves."""
        if not unreduced:
            return
        m = len(unreduced)
        full, rem = divmod(m, K_int)
        proto = unreduced[0]
        for _ in range(full):
            out.append(replace(proto, gap_samples=list(proto.gap_samples)))
        fraction = rem / K
        if fraction > _MIN_FRACTION:
            out.append(_scaled_leaf(proto, fraction, comm_scaler))
        unreduced.clear()

    for node in rank_sig.nodes:
        if isinstance(node, EventStats):
            if unreduced and _leaf_identity(unreduced[-1]) != _leaf_identity(node):
                flush_run()
            unreduced.append(node)
            continue
        flush_run()
        # Step 1: divide the top-level loop count by K.
        q, r = divmod(node.count, K_int)
        if q >= 1:
            out.append(LoopNode(body=list(node.body), count=q))
        remainder_iters = r if q >= 1 else node.count
        fraction = remainder_iters / K
        if fraction > _MIN_FRACTION:
            # Steps 2+3 on the unrolled remainder: one body copy at
            # fraction scale (see module docstring).
            for child in node.body:
                out.append(_scale_node(child, fraction, comm_scaler))
    flush_run()

    return RankSignature(
        rank=rank_sig.rank,
        nodes=out,
        tail_gap=rank_sig.tail_gap / K,
    )


def scale_signature(
    signature: Signature,
    K: float,
    comm_scaler: Optional[CommScaler] = None,
) -> ScaledSignature:
    """Apply the paper's §3.3 scaling to every rank of ``signature``."""
    if not math.isfinite(K) or K < 1.0:
        raise SkeletonError(f"scaling factor must be >= 1, got {K}")
    comm_scaler = comm_scaler or naive_comm_scaler
    K_int = max(1, int(round(K)))
    ranks = [_scale_rank(r, K, K_int, comm_scaler) for r in signature.ranks]
    scaled = ScaledSignature(
        base_name=signature.program_name,
        nranks=signature.nranks,
        K=K,
        K_int=K_int,
        ranks=ranks,
    )
    scaled.estimate = max(r.total_time() for r in ranks)
    return scaled
