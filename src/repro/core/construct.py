"""End-to-end skeleton construction (paper Figure 1).

:func:`build_skeleton` runs the whole pipeline: trace → compression at
Q = K/2 → scaling by K → runnable skeleton program, and attaches the
shortest-good-skeleton analysis, issuing the paper's §3.4 warning when
the requested skeleton is smaller than the estimated minimum.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core.compress import CompressionOptions, compress_trace
from repro.core.goodness import GoodnessReport, shortest_good_skeleton
from repro.core.scale import CommScaler, ScaledSignature, scale_signature
from repro.core.signature import Signature
from repro.core.skeleton import GapModel, check_alignment, mean_gap_model, skeleton_program
from repro.errors import SkeletonError, SkeletonQualityWarning
from repro.obs.metrics import get_metrics
from repro.sim.program import Program
from repro.trace.records import Trace


@dataclass
class SkeletonBundle:
    """Everything produced for one skeleton."""

    program: Program
    signature: Signature
    scaled: ScaledSignature
    K: float
    target_seconds: Optional[float]
    goodness: GoodnessReport
    flagged: bool

    @property
    def estimate(self) -> float:
        """Construction-time estimate of the skeleton's dedicated
        execution time (per-rank serial time)."""
        return self.scaled.estimate


def build_skeleton(
    trace: Trace,
    target_seconds: Optional[float] = None,
    scaling_factor: Optional[float] = None,
    compression: Optional[CompressionOptions] = None,
    gap_model: GapModel = mean_gap_model,
    comm_scaler: Optional[CommScaler] = None,
    check: bool = True,
    warn: bool = True,
) -> SkeletonBundle:
    """Construct a performance skeleton from an application trace.

    Exactly one of ``target_seconds`` (desired skeleton execution time)
    or ``scaling_factor`` (K) must be given; the other is derived from
    the traced execution time. The compression target ratio is the
    paper's Q = K/2.
    """
    if (target_seconds is None) == (scaling_factor is None):
        raise SkeletonError(
            "specify exactly one of target_seconds / scaling_factor"
        )
    elapsed = trace.elapsed
    if target_seconds is not None:
        if target_seconds <= 0:
            raise SkeletonError("target_seconds must be positive")
        K = max(1.0, elapsed / target_seconds)
    else:
        K = float(scaling_factor)
        if K < 1.0:
            raise SkeletonError("scaling factor must be >= 1")
        target_seconds = elapsed / K

    metrics = get_metrics()
    t_wall = time.perf_counter()
    repairs = 0
    options = compression or CompressionOptions()
    # The paper's empirical rule Q = K/2 (any ratio is trivially met
    # when K < 2, hence the clamp).
    target_ratio = max(1.0, K / 2.0)
    signature = compress_trace(trace, target_ratio=target_ratio, options=options)
    scaled = scale_signature(signature, K, comm_scaler=comm_scaler)
    if check:
        # Alignment-repair loop: if the per-rank signatures compressed
        # into incompatible structures (their skeletons could not
        # communicate), raise the similarity threshold — coarser
        # clustering restores a common loop structure — and retry.
        from dataclasses import replace as _dc_replace

        attempt = 0
        while True:
            try:
                check_alignment(scaled)
                break
            except SkeletonError:
                attempt += 1
                repairs = attempt
                if attempt > 8:
                    raise
                options = _dc_replace(
                    options,
                    start_threshold=signature.threshold + options.threshold_step,
                    max_threshold=max(
                        options.max_threshold,
                        signature.threshold + options.threshold_step,
                    ),
                )
                signature = compress_trace(
                    trace, target_ratio=target_ratio, options=options
                )
                scaled = scale_signature(signature, K, comm_scaler=comm_scaler)
    program = skeleton_program(scaled, gap_model=gap_model)

    goodness = shortest_good_skeleton(signature)
    flagged = goodness.flags(target_seconds)
    if flagged and warn:
        warnings.warn(
            f"requested {target_seconds:.3g}s skeleton for "
            f"{trace.program_name} is below the estimated shortest good "
            f"skeleton ({goodness.min_good_seconds:.3g}s); prediction "
            f"quality may be reduced",
            SkeletonQualityWarning,
            stacklevel=2,
        )

    if metrics.enabled:
        metrics.counter(
            "construct.skeletons_built", "build_skeleton invocations"
        ).inc()
        if repairs:
            metrics.counter(
                "construct.alignment_repairs",
                "threshold bumps forced by cross-rank misalignment",
            ).inc(repairs)
        metrics.histogram(
            "construct.build_skeleton_seconds",
            "wall time of the whole construction pipeline",
        ).observe(time.perf_counter() - t_wall)

    return SkeletonBundle(
        program=program,
        signature=signature,
        scaled=scaled,
        K=K,
        target_seconds=target_seconds,
        goodness=goodness,
        flagged=flagged,
    )
