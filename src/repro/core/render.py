"""Human-readable rendering of execution signatures.

Produces the paper's ``α[(β)²γ]³κ[α]²`` view of a signature as an
indented text tree, with event parameters and compute gaps — used by
the CLI's ``signature`` command and handy when eyeballing what the
compressor recovered.
"""

from __future__ import annotations

from repro.core.signature import EventStats, LoopNode, Node, RankSignature, Signature
from repro.util.timebase import format_duration


def _fmt_bytes(nbytes: float) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes / (1 << 20):.1f}MB"
    if nbytes >= 1 << 10:
        return f"{nbytes / (1 << 10):.1f}KB"
    return f"{nbytes:.0f}B"


def _leaf_line(leaf: EventStats) -> str:
    parts = [leaf.call.replace("MPI_", "")]
    details = []
    if leaf.peer >= 0:
        details.append(f"peer={leaf.peer}")
    if leaf.mean_bytes > 0:
        details.append(_fmt_bytes(leaf.mean_bytes))
    if leaf.nreqs > 0:
        details.append(f"n={leaf.nreqs}")
    if details:
        parts.append("(" + ", ".join(details) + ")")
    if leaf.mean_gap > 0:
        parts.append(f"after {format_duration(leaf.mean_gap)} compute")
    if leaf.count > 1:
        parts.append(f"[avg of {leaf.count}]")
    return " ".join(parts)


def _render_nodes(nodes: list[Node], lines: list[str], depth: int,
                  max_depth: int) -> None:
    pad = "  " * depth
    for node in nodes:
        if isinstance(node, LoopNode):
            lines.append(f"{pad}loop x{node.count}:")
            if depth + 1 <= max_depth:
                _render_nodes(node.body, lines, depth + 1, max_depth)
            else:
                lines.append(f"{pad}  ... ({node.n_leaves()} events)")
        else:
            lines.append(pad + _leaf_line(node))


def render_rank_signature(
    rank_sig: RankSignature, max_depth: int = 6
) -> str:
    """Text tree of one rank's signature."""
    lines = [
        f"rank {rank_sig.rank}: {rank_sig.n_leaves()} entries, "
        f"{rank_sig.expanded_length()} events when expanded, "
        f"{format_duration(rank_sig.total_time())}"
    ]
    _render_nodes(rank_sig.nodes, lines, 1, max_depth)
    if rank_sig.tail_gap > 0:
        lines.append(f"  trailing compute {format_duration(rank_sig.tail_gap)}")
    return "\n".join(lines)


def render_signature(
    signature: Signature, ranks: int | None = 1, max_depth: int = 6
) -> str:
    """Text rendering of a signature (first ``ranks`` ranks; None =
    all)."""
    header = (
        f"signature of {signature.program_name}: threshold "
        f"{signature.threshold:.3f}, compression "
        f"{signature.compression_ratio:.1f}x "
        f"({signature.trace_events} -> {signature.n_leaves()} events)"
    )
    show = signature.ranks if ranks is None else signature.ranks[:ranks]
    return "\n".join(
        [header] + [render_rank_signature(r, max_depth) for r in show]
    )
