"""Canonical execution events for signature construction.

The paper's compression treats the trace as a sequence of
*communication events* with computation riding along: "the compression
procedure is applied across communication operations without regard to
interleaving computations" (§3.2). Accordingly an :class:`ExecEvent`
is one MPI call with the *compute gap that preceded it* attached; the
residual compute after a rank's final call is the stream's
``tail_gap``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.trace.records import Trace, TraceRecord


@dataclass(frozen=True, slots=True)
class ExecEvent:
    """One communication event plus its preceding compute gap."""

    call: str
    peer: int        # peer rank / root; -1 for non-rooted collectives
    tag: int         # user tag; -1 where not applicable
    nbytes: float
    duration: float  # time spent inside the MPI call
    gap: float       # compute time since the previous call
    nreqs: int = 0   # request count for MPI_Waitall
    src: int = -1    # receive source for MPI_Sendrecv
    group: tuple = ()  # sub-communicator members; () = COMM_WORLD

    def key(self) -> tuple:
        """Hard clustering key: events differing here never merge."""
        return (self.call, self.peer, self.tag, self.nreqs, self.src,
                self.group)


@dataclass
class RankStream:
    """One rank's event stream."""

    rank: int
    events: list[ExecEvent] = field(default_factory=list)
    tail_gap: float = 0.0

    def total_time(self) -> float:
        return sum(e.gap + e.duration for e in self.events) + self.tail_gap

    def comm_time(self) -> float:
        return sum(e.duration for e in self.events)


def _to_event(rec: TraceRecord, gap: float) -> ExecEvent:
    params = rec.params
    tag = int(params.get("tag", -1))
    return ExecEvent(
        call=rec.call,
        peer=rec.peer,
        tag=tag,
        nbytes=float(rec.nbytes),
        duration=rec.duration,
        gap=gap,
        nreqs=int(params.get("count", 0)),
        src=int(params.get("source", -1)),
        group=tuple(params.get("group", ())),
    )


def trace_to_streams(trace: Trace) -> list[RankStream]:
    """Convert a trace into per-rank event streams.

    Compute gaps are derived from inter-call timestamps exactly as the
    paper does with its gettimeofday records: the gap before call *i*
    is ``t_start[i] - t_end[i-1]`` (``t_start[0]`` for the first).
    """
    if not trace.finish_times:
        raise TraceError("trace lacks finish times")
    streams: list[RankStream] = []
    for rank in range(trace.nranks):
        records = trace.records[rank]
        stream = RankStream(rank=rank)
        prev_end = 0.0
        for rec in records:
            gap = max(0.0, rec.t_start - prev_end)
            stream.events.append(_to_event(rec, gap))
            prev_end = rec.t_end
        stream.tail_gap = max(0.0, trace.finish_times[rank] - prev_end)
        streams.append(stream)
    return streams
