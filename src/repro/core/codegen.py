"""Synthetic C/MPI source emission (paper §3.3 step 4).

The paper's framework converts the scaled signature "to synthetic C
code by generating corresponding synthetic loops, MPI calls, and
compute operations". This module emits a self-contained C program:
compute gaps become calls to a calibrated busy-spin routine, message
events become MPI calls on statically allocated buffers, and loop
nodes become ``for`` loops. Per-rank behaviour is selected with an
``if (rank == ...)`` ladder, as generated SPMD skeletons do.

The emitted source is an artifact (this repo's substrate is the
simulator, which runs the equivalent :class:`Program` directly), but
it is complete, compilable C that documents exactly what the skeleton
does.
"""

from __future__ import annotations

from repro.core.scale import ScaledSignature
from repro.core.signature import EventStats, LoopNode, Node
from repro.errors import SkeletonError

_HEADER = """\
/* Performance skeleton for {name}
 * Generated automatically; scaling factor K = {K:.3f}.
 *
 * busy_compute(seconds) spins a calibrated floating-point loop; the
 * calibration constant SPIN_PER_SEC must be tuned once per host with
 * the -DCALIBRATE build (see main).
 */
#include <mpi.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#ifndef SPIN_PER_SEC
#define SPIN_PER_SEC 2.0e8
#endif

static char sendbuf[{bufsize}];
static char recvbuf[{bufsize}];
static MPI_Request reqs[{maxreqs}];
static int nreqs = 0;
static volatile double spin_sink = 0.0;

static void busy_compute(double seconds) {{
    long iters = (long)(seconds * SPIN_PER_SEC);
    double x = 1.0000001;
    for (long i = 0; i < iters; i++) x = x * 1.0000001 + 1e-9;
    spin_sink += x;
}}
"""

_MAIN_HEAD = """
int main(int argc, char **argv) {
    int rank, size;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    if (size != %(nranks)d) {
        if (rank == 0)
            fprintf(stderr, "skeleton requires %(nranks)d ranks\\n");
        MPI_Abort(MPI_COMM_WORLD, 1);
    }
    double t_start = MPI_Wtime();
"""

_MAIN_TAIL = """
    MPI_Barrier(MPI_COMM_WORLD);
    if (rank == 0)
        printf("skeleton elapsed: %.6f s\\n", MPI_Wtime() - t_start);
    MPI_Finalize();
    return 0;
}
"""


class _Emitter:
    def __init__(self, groups: dict[tuple, int] | None = None) -> None:
        self.lines: list[str] = []
        self.depth = 1
        self._loop_var = 0
        #: Distinct sub-communicators: member tuple -> comms[] index.
        self.groups = groups or {}

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def fresh_var(self) -> str:
        self._loop_var += 1
        return f"i{self._loop_var}"

    def comm_of(self, leaf: EventStats) -> str:
        if leaf.group:
            return f"subcomms[{self.groups[tuple(leaf.group)]}]"
        return "MPI_COMM_WORLD"


def _leaf_code(leaf: EventStats, em: _Emitter) -> None:
    if leaf.mean_gap > 0:
        em.emit(f"busy_compute({leaf.mean_gap:.9g});")
    nbytes = max(0, int(round(leaf.mean_bytes)))
    tag = max(0, leaf.tag)
    call = leaf.call
    comm = em.comm_of(leaf)
    # Rooted collectives on sub-communicators take group-local roots.
    groot = (
        list(leaf.group).index(leaf.peer)
        if leaf.group and leaf.peer in leaf.group
        else leaf.peer
    )
    if call == "MPI_Send":
        em.emit(
            f"MPI_Send(sendbuf, {nbytes}, MPI_BYTE, {leaf.peer}, {tag}, "
            f"MPI_COMM_WORLD);"
        )
    elif call == "MPI_Recv":
        src = leaf.peer if leaf.peer >= 0 else "MPI_ANY_SOURCE"
        em.emit(
            f"MPI_Recv(recvbuf, {nbytes}, MPI_BYTE, {src}, "
            f"{tag if leaf.tag >= 0 else 'MPI_ANY_TAG'}, MPI_COMM_WORLD, "
            f"MPI_STATUS_IGNORE);"
        )
    elif call == "MPI_Isend":
        em.emit(
            f"MPI_Isend(sendbuf, {nbytes}, MPI_BYTE, {leaf.peer}, {tag}, "
            f"MPI_COMM_WORLD, &reqs[nreqs++]);"
        )
    elif call == "MPI_Irecv":
        src = leaf.peer if leaf.peer >= 0 else "MPI_ANY_SOURCE"
        em.emit(
            f"MPI_Irecv(recvbuf, {nbytes}, MPI_BYTE, {src}, "
            f"{tag if leaf.tag >= 0 else 'MPI_ANY_TAG'}, MPI_COMM_WORLD, "
            f"&reqs[nreqs++]);"
        )
    elif call == "MPI_Wait":
        em.emit("if (nreqs > 0) MPI_Wait(&reqs[--nreqs], MPI_STATUS_IGNORE);")
    elif call == "MPI_Waitall":
        em.emit("MPI_Waitall(nreqs, reqs, MPI_STATUSES_IGNORE); nreqs = 0;")
    elif call == "MPI_Sendrecv":
        src = leaf.src if leaf.src >= 0 else leaf.peer
        em.emit(
            f"MPI_Sendrecv(sendbuf, {nbytes}, MPI_BYTE, {leaf.peer}, {tag}, "
            f"recvbuf, {nbytes}, MPI_BYTE, {src}, {tag}, MPI_COMM_WORLD, "
            f"MPI_STATUS_IGNORE);"
        )
    elif call == "MPI_Barrier":
        em.emit(f"MPI_Barrier({comm});")
    elif call == "MPI_Bcast":
        em.emit(f"MPI_Bcast(sendbuf, {nbytes}, MPI_BYTE, {groot}, {comm});")
    elif call == "MPI_Reduce":
        n = max(1, nbytes // 8)
        em.emit(
            f"MPI_Reduce(sendbuf, recvbuf, {n}, MPI_DOUBLE, MPI_SUM, "
            f"{groot}, {comm});"
        )
    elif call == "MPI_Allreduce":
        n = max(1, nbytes // 8)
        em.emit(
            f"MPI_Allreduce(sendbuf, recvbuf, {n}, MPI_DOUBLE, MPI_SUM, "
            f"{comm});"
        )
    elif call == "MPI_Allgather":
        em.emit(
            f"MPI_Allgather(sendbuf, {nbytes}, MPI_BYTE, recvbuf, {nbytes}, "
            f"MPI_BYTE, {comm});"
        )
    elif call == "MPI_Alltoall":
        em.emit(
            f"MPI_Alltoall(sendbuf, {nbytes}, MPI_BYTE, recvbuf, {nbytes}, "
            f"MPI_BYTE, {comm});"
        )
    elif call == "MPI_Alltoallv":
        em.emit("{")
        em.depth += 1
        em.emit("int scounts[64], sdispls[64], rcounts[64], rdispls[64];")
        per = nbytes  # total bytes; split uniformly at runtime
        em.emit("for (int p = 0; p < size; p++) {")
        em.depth += 1
        em.emit(f"scounts[p] = {per} / size; rcounts[p] = {per} / size;")
        em.emit(f"sdispls[p] = p * ({per} / size); rdispls[p] = p * ({per} / size);")
        em.depth -= 1
        em.emit("}")
        em.emit(
            f"MPI_Alltoallv(sendbuf, scounts, sdispls, MPI_BYTE, recvbuf, "
            f"rcounts, rdispls, MPI_BYTE, {comm});"
        )
        em.depth -= 1
        em.emit("}")
    elif call == "MPI_Reduce_scatter":
        n = max(1, nbytes // 8)
        em.emit("{")
        em.depth += 1
        em.emit(f"int rcounts[64]; for (int p = 0; p < size; p++) rcounts[p] = {n};")
        em.emit(
            f"MPI_Reduce_scatter(sendbuf, recvbuf, rcounts, MPI_DOUBLE, "
            f"MPI_SUM, {comm});"
        )
        em.depth -= 1
        em.emit("}")
    elif call == "MPI_Scan":
        n = max(1, nbytes // 8)
        em.emit(
            f"MPI_Scan(sendbuf, recvbuf, {n}, MPI_DOUBLE, MPI_SUM, "
            f"{comm});"
        )
    elif call == "MPI_Gather":
        em.emit(
            f"MPI_Gather(sendbuf, {nbytes}, MPI_BYTE, recvbuf, {nbytes}, "
            f"MPI_BYTE, {groot}, {comm});"
        )
    elif call == "MPI_Scatter":
        em.emit(
            f"MPI_Scatter(sendbuf, {nbytes}, MPI_BYTE, recvbuf, {nbytes}, "
            f"MPI_BYTE, {groot}, {comm});"
        )
    else:
        raise SkeletonError(f"codegen: unknown call {call!r}")


def _emit_nodes(nodes: list[Node], em: _Emitter) -> None:
    for node in nodes:
        if isinstance(node, LoopNode):
            var = em.fresh_var()
            em.emit(f"for (int {var} = 0; {var} < {node.count}; {var}++) {{")
            em.depth += 1
            _emit_nodes(node.body, em)
            em.depth -= 1
            em.emit("}")
        else:
            _leaf_code(node, em)


def _max_bytes(nodes: list[Node]) -> int:
    worst = 0
    for node in nodes:
        if isinstance(node, LoopNode):
            worst = max(worst, _max_bytes(node.body))
        else:
            worst = max(worst, int(round(node.mean_bytes)))
    return worst


def _collect_groups(nodes: list[Node], out: dict[tuple, int]) -> None:
    for node in nodes:
        if isinstance(node, LoopNode):
            _collect_groups(node.body, out)
        elif node.group:
            key = tuple(node.group)
            if key not in out:
                out[key] = len(out)


def _emit_subcomm_setup(groups: dict[tuple, int]) -> str:
    """Create one MPI communicator per distinct sub-group via
    MPI_Comm_split (members get colour = group index, others
    MPI_UNDEFINED)."""
    lines = [f"    MPI_Comm subcomms[{len(groups)}];"]
    for members, idx in groups.items():
        cond = " || ".join(f"rank == {m}" for m in members)
        lines.append(
            f"    MPI_Comm_split(MPI_COMM_WORLD, ({cond}) ? {idx} : "
            f"MPI_UNDEFINED, rank, &subcomms[{idx}]);"
        )
    return "\n".join(lines) + "\n"


def generate_c_source(scaled: ScaledSignature, name: str | None = None) -> str:
    """Emit the complete C/MPI skeleton source for a scaled signature."""
    name = name or scaled.base_name
    bufsize = max(
        4096, max((_max_bytes(r.nodes) for r in scaled.ranks), default=0) + 8
    )
    groups: dict[tuple, int] = {}
    for rank_sig in scaled.ranks:
        _collect_groups(rank_sig.nodes, groups)
    source = _HEADER.format(name=name, K=scaled.K, bufsize=bufsize, maxreqs=256)
    source += _MAIN_HEAD % {"nranks": scaled.nranks}
    if groups:
        source += _emit_subcomm_setup(groups)
    em = _Emitter(groups)
    for i, rank_sig in enumerate(scaled.ranks):
        kw = "if" if i == 0 else "else if"
        em.emit(f"{kw} (rank == {rank_sig.rank}) {{")
        em.depth += 1
        _emit_nodes(rank_sig.nodes, em)
        if rank_sig.tail_gap > 0:
            em.emit(f"busy_compute({rank_sig.tail_gap:.9g});")
        em.depth -= 1
        em.emit("}")
    source += "\n".join(em.lines)
    source += _MAIN_TAIL
    return source
