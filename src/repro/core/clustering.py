"""Threshold clustering of execution events into symbols (paper §3.2).

The trace becomes "a string of symbols where substantially similar
execution events are placed in one cluster and assigned the same
symbol". Events only ever merge within the same hard key (MPI
primitive, peer, tag — blocking and non-blocking calls are distinct
primitives and are never grouped). Within a key, an event joins the
first existing cluster whose running-mean centroid is within the
similarity threshold; a threshold of 0 clusters only identical events.

The clustering outcome is a *step function* of the threshold:
assignments can only change where some event's distance to a
running-mean centroid crosses the threshold. Every :class:`ClusterSpace`
run therefore also produces a certificate interval
``[stable_lo, stable_hi)`` — the maximal band of thresholds on which
its exact decision sequence (hence every symbol and centroid) holds.
:class:`StreamDendrogram` caches these bands so a threshold search pays
one clustering pass per *distinct outcome* instead of per step.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.distance import (
    DimensionScales,
    dissimilarity,
    event_scales,
    event_vector,
    scalar_dissimilarity,
)
from repro.core.events import ExecEvent, RankStream
from repro.obs.metrics import get_metrics


@dataclass
class Cluster:
    """A group of substantially similar events."""

    symbol: int
    key: tuple
    centroid: tuple[float, ...]
    count: int = 0

    def absorb(self, vec: tuple[float, ...]) -> None:
        """Update the running-mean centroid with one more member."""
        n = self.count
        self.centroid = tuple(
            (c * n + v) / (n + 1) for c, v in zip(self.centroid, vec)
        )
        self.count = n + 1


@dataclass
class ClusterSpace:
    """Clustering state and result for one rank stream.

    Alongside the assignment itself, the space maintains an exact
    plateau certificate: every threshold ``t`` with
    ``stable_lo <= t < stable_hi`` makes the same accept/reject
    decision at every assignment this space has performed so far, and
    therefore yields bit-identical symbols and centroids. Each accepted
    merge at distance *d* raises ``stable_lo`` to *d* (below it the
    merge would be rejected); each rejected candidate at distance *d*
    lowers ``stable_hi`` to *d* (at it the rejection would flip).
    """

    threshold: float
    scales: DimensionScales
    clusters: list[Cluster] = field(default_factory=list)
    _by_key: dict = field(default_factory=dict)
    stable_lo: float = 0.0
    stable_hi: float = float("inf")

    def __post_init__(self) -> None:
        metrics = get_metrics()
        self._m_enabled = metrics.enabled
        if self._m_enabled:
            self._m_merges = metrics.counter(
                "construct.cluster_merges",
                "events absorbed into an existing cluster",
            )
            self._m_created = metrics.counter(
                "construct.clusters_created", "new clusters opened"
            )
        self._scale_vec = event_scales(self.scales)

    def assign(self, ev: ExecEvent) -> int:
        """Return the symbol for ``ev``, creating a cluster if needed."""
        key = ev.key()
        vec = event_vector(ev)
        bucket = self._by_key.get(key)
        if bucket is None:
            bucket = []
            self._by_key[key] = bucket
        scalar = len(vec) == 1
        threshold = self.threshold
        for cluster in bucket:
            if scalar:
                d = scalar_dissimilarity(
                    vec[0], cluster.centroid[0], self._scale_vec[0]
                )
            else:
                d = dissimilarity(vec, cluster.centroid, self._scale_vec)
            if d <= threshold:
                if d > self.stable_lo:
                    self.stable_lo = d
                cluster.absorb(vec)
                if self._m_enabled:
                    self._m_merges.inc()
                return cluster.symbol
            if d < self.stable_hi:
                self.stable_hi = d
        cluster = Cluster(symbol=len(self.clusters), key=key, centroid=vec, count=1)
        self.clusters.append(cluster)
        bucket.append(cluster)
        if self._m_enabled:
            self._m_created.inc()
        return cluster.symbol

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)


class ThresholdBand:
    """One plateau of the threshold-indexed clustering.

    For every threshold ``lo <= t < hi`` the first-fit scan makes the
    identical decision sequence, so ``symbols`` (and the underlying
    centroids) are exact for the whole band, not just the probed
    threshold. Bands compare by identity — two equal thresholds inside
    one band resolve to the *same* object, which downstream caches
    (e.g. the compression driver's fold memo) exploit as a key.
    """

    __slots__ = ("lo", "hi", "symbols", "n_clusters")

    def __init__(
        self, lo: float, hi: float, symbols: list[int], n_clusters: int
    ):
        self.lo = lo
        self.hi = hi
        self.symbols = symbols
        self.n_clusters = n_clusters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThresholdBand([{self.lo:g}, {self.hi:g}), "
            f"{self.n_clusters} clusters)"
        )


class StreamDendrogram:
    """Lazily materialised merge structure of one event sequence.

    Conceptually this is the single-linkage dendrogram of the paper's
    incremental clustering: each event "joins cluster C at threshold
    t", and the outcome only changes at a finite set of merge
    thresholds. Rather than enumerating those points up front (the
    running-mean centroids make them history-dependent), each probe of
    :meth:`band_at` runs one certified first-fit pass and returns the
    *maximal* band around the probed threshold on which the whole
    decision sequence is provably constant (see
    :class:`ClusterSpace`). Bands are disjoint, cached, and found by
    bisection, so a threshold search walking a fine grid pays one
    clustering pass per distinct outcome instead of per step.

    ``symbol_base`` offsets every returned symbol — the compression
    driver uses it to keep coordinated collective symbols in their own
    namespace.
    """

    def __init__(
        self,
        events: Sequence[ExecEvent],
        scales: DimensionScales,
        symbol_base: int = 0,
    ):
        self._events = list(events)
        self._scales = scales
        self._base = symbol_base
        self._los: list[float] = []
        self._bands: list[ThresholdBand] = []

    def band_at(self, threshold: float) -> ThresholdBand:
        """The cached (or freshly probed) band containing ``threshold``."""
        if threshold < 0:
            raise ValueError("similarity threshold must be >= 0")
        i = bisect_right(self._los, threshold) - 1
        if i >= 0:
            band = self._bands[i]
            if threshold < band.hi:
                return band
        space = ClusterSpace(threshold=threshold, scales=self._scales)
        base = self._base
        if base:
            symbols = [base + space.assign(ev) for ev in self._events]
        else:
            symbols = [space.assign(ev) for ev in self._events]
        band = ThresholdBand(
            space.stable_lo, space.stable_hi, symbols, space.n_clusters
        )
        j = bisect_right(self._los, band.lo)
        self._los.insert(j, band.lo)
        self._bands.insert(j, band)
        return band

    @property
    def n_bands(self) -> int:
        """Number of distinct plateaus materialised so far."""
        return len(self._bands)

    @property
    def n_events(self) -> int:
        return len(self._events)


def cluster_stream(
    stream: RankStream,
    threshold: float,
    scales: DimensionScales | None = None,
) -> tuple[list[int], ClusterSpace]:
    """Cluster one rank's events; return (symbol string, space).

    ``scales`` defaults to per-stream maxima; the compression driver
    passes trace-wide scales so the threshold means the same thing on
    every rank.
    """
    if threshold < 0:
        raise ValueError("similarity threshold must be >= 0")
    if scales is None:
        scales = DimensionScales.from_events(stream.events)
    space = ClusterSpace(threshold=threshold, scales=scales)
    symbols = [space.assign(ev) for ev in stream.events]
    return symbols, space
