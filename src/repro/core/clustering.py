"""Threshold clustering of execution events into symbols (paper §3.2).

The trace becomes "a string of symbols where substantially similar
execution events are placed in one cluster and assigned the same
symbol". Events only ever merge within the same hard key (MPI
primitive, peer, tag — blocking and non-blocking calls are distinct
primitives and are never grouped). Within a key, an event joins the
first existing cluster whose running-mean centroid is within the
similarity threshold; a threshold of 0 clusters only identical events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.distance import (
    DimensionScales,
    dissimilarity,
    event_scales,
    event_vector,
)
from repro.core.events import ExecEvent, RankStream
from repro.obs.metrics import get_metrics


@dataclass
class Cluster:
    """A group of substantially similar events."""

    symbol: int
    key: tuple
    centroid: tuple[float, ...]
    count: int = 0

    def absorb(self, vec: tuple[float, ...]) -> None:
        """Update the running-mean centroid with one more member."""
        n = self.count
        self.centroid = tuple(
            (c * n + v) / (n + 1) for c, v in zip(self.centroid, vec)
        )
        self.count = n + 1


@dataclass
class ClusterSpace:
    """Clustering state and result for one rank stream."""

    threshold: float
    scales: DimensionScales
    clusters: list[Cluster] = field(default_factory=list)
    _by_key: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        metrics = get_metrics()
        self._m_enabled = metrics.enabled
        if self._m_enabled:
            self._m_merges = metrics.counter(
                "construct.cluster_merges",
                "events absorbed into an existing cluster",
            )
            self._m_created = metrics.counter(
                "construct.clusters_created", "new clusters opened"
            )

    def assign(self, ev: ExecEvent) -> int:
        """Return the symbol for ``ev``, creating a cluster if needed."""
        key = ev.key()
        vec = event_vector(ev)
        scales = event_scales(self.scales)
        bucket = self._by_key.get(key)
        if bucket is None:
            bucket = []
            self._by_key[key] = bucket
        for cluster in bucket:
            if dissimilarity(vec, cluster.centroid, scales) <= self.threshold:
                cluster.absorb(vec)
                if self._m_enabled:
                    self._m_merges.inc()
                return cluster.symbol
        cluster = Cluster(symbol=len(self.clusters), key=key, centroid=vec, count=1)
        self.clusters.append(cluster)
        bucket.append(cluster)
        if self._m_enabled:
            self._m_created.inc()
        return cluster.symbol

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)


def cluster_stream(
    stream: RankStream,
    threshold: float,
    scales: DimensionScales | None = None,
) -> tuple[list[int], ClusterSpace]:
    """Cluster one rank's events; return (symbol string, space).

    ``scales`` defaults to per-stream maxima; the compression driver
    passes trace-wide scales so the threshold means the same thing on
    every rank.
    """
    if threshold < 0:
        raise ValueError("similarity threshold must be >= 0")
    if scales is None:
        scales = DimensionScales.from_events(stream.events)
    space = ClusterSpace(threshold=threshold, scales=scales)
    symbols = [space.assign(ev) for ev in stream.events]
    return symbols, space
