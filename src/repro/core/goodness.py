"""Shortest "good" skeleton estimation (paper §3.4).

"To determine the shortest good skeleton, the framework identifies the
dominant sequence of execution events in the application that comprise
a significantly large percentage of application execution time. A
skeleton is considered a good skeleton if at least one full iteration
of the dominant sequence of execution events is included."

The dominant sequence is found per rank: among all loop nodes whose
total time (iteration time × total repetitions) covers at least
``min_share`` of the rank's time, the most deeply repeated one (the
basic repeating unit — e.g. one CG inner iteration, one IS ranking
round including its all-to-all). The minimum good skeleton time is the
duration of one full iteration of that sequence, maximised over ranks
(every rank must fit one iteration in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.signature import LoopNode, RankSignature, Signature
from repro.errors import SignatureError

#: A loop must cover at least this share of a rank's time to be a
#: candidate dominant sequence.
DEFAULT_MIN_SHARE = 0.5


@dataclass(frozen=True)
class RankDominance:
    """Dominant sequence of one rank."""

    rank: int
    iteration_seconds: float
    total_reps: int
    time_share: float


@dataclass(frozen=True)
class GoodnessReport:
    """Result of the shortest-good-skeleton analysis (Figure 4 rows)."""

    program_name: str
    min_good_seconds: float
    per_rank: tuple[RankDominance, ...]

    def flags(self, target_seconds: float) -> bool:
        """True if a skeleton of ``target_seconds`` is below the
        estimated minimum and should be flagged as potentially not
        good."""
        return target_seconds < self.min_good_seconds


def _dominant(rank_sig: RankSignature, min_share: float) -> Optional[RankDominance]:
    total = rank_sig.total_time()
    if total <= 0:
        return None
    best: Optional[RankDominance] = None
    fallback: Optional[RankDominance] = None
    for loop, reps in rank_sig.iter_loops():
        loop_total = loop.iteration_time() * reps
        share = loop_total / total
        cand = RankDominance(
            rank=rank_sig.rank,
            iteration_seconds=loop.iteration_time(),
            total_reps=reps,
            time_share=share,
        )
        if share >= min_share:
            # Most deeply repeated qualifying loop = basic unit.
            if best is None or reps > best.total_reps:
                best = cand
        if fallback is None or share > fallback.time_share:
            fallback = cand
    if best is None and fallback is None:
        # No repeating structure at all: the whole execution is its own
        # dominant sequence — no shorter skeleton can be "good".
        fallback = RankDominance(
            rank=rank_sig.rank,
            iteration_seconds=total,
            total_reps=1,
            time_share=1.0,
        )
    return best or fallback


def shortest_good_skeleton(
    signature: Signature, min_share: float = DEFAULT_MIN_SHARE
) -> GoodnessReport:
    """Estimate the minimum execution time of a good skeleton."""
    per_rank: list[RankDominance] = []
    for rank_sig in signature.ranks:
        dom = _dominant(rank_sig, min_share)
        if dom is not None:
            per_rank.append(dom)
    if not per_rank:
        raise SignatureError(
            "signature has no repeating structure to derive a dominant "
            "sequence from"
        )
    return GoodnessReport(
        program_name=signature.program_name,
        min_good_seconds=max(d.iteration_seconds for d in per_rank),
        per_rank=tuple(per_rank),
    )
