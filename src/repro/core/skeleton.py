"""Executable skeleton programs (paper §3.3 step 4, runnable form).

A scaled signature converts directly into a :class:`repro.sim.Program`
whose per-rank generator replays the signature: each leaf first busy-
computes its (scaled) preceding gap, then issues the reconstructed MPI
call; loops iterate their bodies. Non-blocking request linkage is
rebuilt positionally — ``MPI_Wait(all)`` records consume the oldest
outstanding requests, which reproduces the overlap window the paper
extracts by pairing non-blocking calls with their waits.

:func:`check_alignment` verifies that the per-rank skeletons still
talk to each other (matching send/recv totals per channel, equal
collective sequences) before a skeleton is run; misalignment would
mean the per-rank signatures compressed incompatibly.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Callable, Iterator, Optional

from repro.core.scale import ScaledSignature
from repro.core.signature import EventStats, LoopNode, Node, RankSignature
from repro.errors import SkeletonError
from repro.sim.ops import (
    ANY_TAG,
    Allgather,
    Allreduce,
    Alltoall,
    Alltoallv,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Irecv,
    Isend,
    Op,
    Recv,
    Reduce,
    ReduceScatter,
    Scan,
    Scatter,
    Send,
    Sendrecv,
    Wait,
    Waitall,
)
from repro.sim.program import Program

#: Strategy hook: maps a leaf to the compute seconds to replay before
#: it. The default replays the averaged gap; the distribution-
#: preserving extension substitutes sampled gaps.
GapModel = Callable[[EventStats, int], float]


def mean_gap_model(leaf: EventStats, iteration: int) -> float:
    """The paper's model: the average gap across merged occurrences."""
    return leaf.mean_gap


def _build_op(leaf: EventStats, size: int) -> Optional[Op]:
    """Reconstruct the simulator op for a signature leaf.

    Returns ``None`` for ops handled specially (waits) — the caller
    deals with request bookkeeping.
    """
    nbytes = max(0, int(round(leaf.mean_bytes)))
    tag = leaf.tag if leaf.tag >= 0 else 0
    call = leaf.call
    group = tuple(leaf.group) if leaf.group else None
    if call == "MPI_Send":
        return Send(dest=leaf.peer, nbytes=nbytes, tag=tag)
    if call == "MPI_Recv":
        return Recv(source=leaf.peer, nbytes=nbytes,
                    tag=leaf.tag if leaf.tag != -1 else ANY_TAG)
    if call == "MPI_Isend":
        return Isend(dest=leaf.peer, nbytes=nbytes, tag=tag)
    if call == "MPI_Irecv":
        return Irecv(source=leaf.peer, nbytes=nbytes,
                     tag=leaf.tag if leaf.tag != -1 else ANY_TAG)
    if call == "MPI_Sendrecv":
        return Sendrecv(
            dest=leaf.peer, send_nbytes=nbytes, send_tag=tag,
            source=leaf.src if leaf.src >= 0 else leaf.peer, recv_tag=tag,
        )
    if call == "MPI_Barrier":
        return Barrier(group=group)
    if call == "MPI_Bcast":
        return Bcast(root=leaf.peer, nbytes=nbytes, group=group)
    if call == "MPI_Reduce":
        return Reduce(root=leaf.peer, nbytes=nbytes, group=group)
    if call == "MPI_Allreduce":
        return Allreduce(nbytes=nbytes, group=group)
    if call == "MPI_Allgather":
        return Allgather(nbytes=nbytes, group=group)
    if call == "MPI_Alltoall":
        return Alltoall(nbytes=nbytes, group=group)
    if call == "MPI_Alltoallv":
        # The trace records the total sent; regenerate a uniform split.
        comm_size = len(group) if group else size
        per_dest = nbytes // max(1, comm_size)
        return Alltoallv(
            send_counts=tuple(per_dest for _ in range(comm_size)),
            group=group,
        )
    if call == "MPI_Reduce_scatter":
        return ReduceScatter(nbytes=nbytes, group=group)
    if call == "MPI_Scan":
        return Scan(nbytes=nbytes, group=group)
    if call == "MPI_Gather":
        return Gather(root=leaf.peer, nbytes=nbytes, group=group)
    if call == "MPI_Scatter":
        return Scatter(root=leaf.peer, nbytes=nbytes, group=group)
    if call in ("MPI_Wait", "MPI_Waitall"):
        return None
    raise SkeletonError(f"cannot reconstruct call {call!r}")


def _replay(
    nodes: list[Node],
    size: int,
    pending: deque,
    gap_model: GapModel,
    iteration: int = 0,
) -> Iterator[Op]:
    for node in nodes:
        if isinstance(node, LoopNode):
            for it in range(node.count):
                yield from _replay(node.body, size, pending, gap_model, it)
            continue
        leaf = node
        gap = gap_model(leaf, iteration)
        if gap > 0:
            yield Compute(gap)
        if leaf.call == "MPI_Wait":
            if pending:
                yield Wait(pending.popleft())
            continue
        if leaf.call == "MPI_Waitall":
            take = leaf.nreqs if leaf.nreqs > 0 else len(pending)
            take = min(take, len(pending))
            if take > 0:
                yield Waitall(tuple(pending.popleft() for _ in range(take)))
            continue
        op = _build_op(leaf, size)
        if isinstance(op, (Isend, Irecv)):
            req = yield op
            pending.append(req)
        else:
            yield op


def skeleton_program(
    scaled: ScaledSignature,
    name: Optional[str] = None,
    gap_model: GapModel = mean_gap_model,
) -> Program:
    """Build the runnable skeleton program for a scaled signature."""
    rank_sigs = {r.rank: r for r in scaled.ranks}

    def make(rank: int, size: int) -> Iterator[Op]:
        sig = rank_sigs[rank]
        pending: deque = deque()
        yield from _replay(sig.nodes, size, pending, gap_model)
        if sig.tail_gap > 0:
            yield Compute(sig.tail_gap)

    return Program(
        name=name or f"skeleton[{scaled.base_name}/K={scaled.K:.1f}]",
        nranks=scaled.nranks,
        make=make,
    )


# ----------------------------------------------------------------------
# alignment checking
# ----------------------------------------------------------------------

_P2P_SENDS = ("MPI_Send", "MPI_Isend")
_P2P_RECVS = ("MPI_Recv", "MPI_Irecv")
_COLLECTIVES = (
    "MPI_Barrier", "MPI_Bcast", "MPI_Reduce", "MPI_Allreduce",
    "MPI_Allgather", "MPI_Alltoall", "MPI_Alltoallv", "MPI_Gather",
    "MPI_Scatter", "MPI_Reduce_scatter", "MPI_Scan",
)


def _channel_counts(rank_sig: RankSignature) -> tuple[Counter, Counter, Counter]:
    """(sends per (dst,tag), recvs per (src,tag), collective counts)."""
    sends: Counter = Counter()
    recvs: Counter = Counter()
    colls: Counter = Counter()

    def walk(nodes: list[Node], mult: int) -> None:
        for node in nodes:
            if isinstance(node, LoopNode):
                walk(node.body, mult * node.count)
                continue
            call = node.call
            if call in _P2P_SENDS:
                sends[(node.peer, node.tag)] += mult
            elif call in _P2P_RECVS:
                recvs[(node.peer, node.tag)] += mult
            elif call == "MPI_Sendrecv":
                sends[(node.peer, node.tag)] += mult
                recvs[(node.src if node.src >= 0 else node.peer, node.tag)] += mult
            elif call in _COLLECTIVES:
                colls[(call, tuple(node.group))] += mult

    walk(rank_sig.nodes, 1)
    return sends, recvs, colls


def check_alignment(scaled: ScaledSignature) -> None:
    """Raise :class:`SkeletonError` if the per-rank skeletons cannot
    communicate consistently.

    Checks: every point-to-point channel (src → dst, tag) carries as
    many sends as receives (wildcard-tag receives are counted against
    the per-peer total), and all ranks perform the same number of each
    collective.
    """
    per_rank = [_channel_counts(r) for r in scaled.ranks]

    coll_counts = [c for (_s, _r, c) in per_rank]
    all_keys = set()
    for counts in coll_counts:
        all_keys.update(counts)
    nranks = len(per_rank)
    for call, group in all_keys:
        participants = group if group else tuple(range(nranks))
        reference = None
        for rank in range(nranks):
            n = coll_counts[rank].get((call, group), 0)
            if rank in participants:
                if reference is None:
                    reference = n
                elif n != reference:
                    raise SkeletonError(
                        f"{call} on group {group or 'WORLD'}: rank "
                        f"{participants[0]} performs {reference}, rank "
                        f"{rank} performs {n}"
                    )
            elif n != 0:
                raise SkeletonError(
                    f"{call} on group {group}: rank {rank} is not a "
                    f"member but performs it {n} times"
                )

    # Aggregate sends per (src, dst, tag) vs recvs posted at dst.
    for dst, (_sends, recvs, _colls) in enumerate(per_rank):
        for (src, tag), n_recv in recvs.items():
            if src < 0:
                continue  # wildcard source: cannot check statically
            sends_from_src = per_rank[src][0]
            n_send = sends_from_src.get((dst, tag), 0)
            if tag == ANY_TAG:
                n_send = sum(
                    cnt for (d, _t), cnt in sends_from_src.items() if d == dst
                )
            if n_send != n_recv:
                raise SkeletonError(
                    f"channel {src}->{dst} tag {tag}: "
                    f"{n_send} sends vs {n_recv} receives"
                )
