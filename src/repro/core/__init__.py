"""The paper's primary contribution: automatic construction of
performance skeletons from execution traces (sections 3.1–3.4).

Pipeline::

    trace                    (repro.trace)
      -> event streams       (core.events)
      -> symbol strings      (core.clustering, similarity threshold)
      -> loop nests          (core.loopfind)
      -> execution signature (core.signature, threshold search in
                              core.compress targets ratio Q = K/2)
      -> scaled signature    (core.scale, factor K)
      -> skeleton            (core.skeleton: runnable Program;
                              core.codegen: synthetic C/MPI source)

:func:`repro.core.construct.build_skeleton` runs the whole pipeline.
"""

from repro.core.events import ExecEvent, RankStream, trace_to_streams
from repro.core.clustering import (
    ClusterSpace,
    StreamDendrogram,
    ThresholdBand,
    cluster_stream,
)
from repro.core.signature import EventStats, LoopNode, RankSignature, Signature
from repro.core.compress import CompressionOptions, compress_trace
from repro.core.scale import scale_signature
from repro.core.skeleton import skeleton_program, check_alignment
from repro.core.goodness import GoodnessReport, shortest_good_skeleton
from repro.core.construct import SkeletonBundle, build_skeleton
from repro.core.codegen import generate_c_source
from repro.core.sigio import read_signature, write_signature
from repro.core.render import render_rank_signature, render_signature

__all__ = [
    "ExecEvent",
    "RankStream",
    "trace_to_streams",
    "ClusterSpace",
    "StreamDendrogram",
    "ThresholdBand",
    "cluster_stream",
    "CompressionOptions",
    "EventStats",
    "LoopNode",
    "RankSignature",
    "Signature",
    "compress_trace",
    "scale_signature",
    "skeleton_program",
    "check_alignment",
    "GoodnessReport",
    "shortest_good_skeleton",
    "SkeletonBundle",
    "build_skeleton",
    "generate_c_source",
    "read_signature",
    "write_signature",
    "render_rank_signature",
    "render_signature",
]
