"""N-dimensional event dissimilarity (paper §3.2).

"Formally we have developed a measure for dissimilarity of events in
N-dimensional space ..., with one dimension for each parameter of an
execution event." Events of different MPI primitives (or different
peers/tags) are never comparable — they live in different spaces and
the clusterer keys on :meth:`ExecEvent.key` first. Within a key, the
dissimilarity is the Chebyshev (max) norm over per-dimension
normalised differences, so a similarity threshold *t* "linearly
relates to the maximum difference in message sizes allowed" — for
message events the dominant dimension is the payload size, normalised
by the largest payload in the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class DimensionScales:
    """Normalisation scales per continuous dimension.

    A scale of 0 means the dimension is absent from the trace (all
    zero); differences there are then required to be exactly zero.
    """

    nbytes: float
    duration: float

    @staticmethod
    def from_events(events) -> "DimensionScales":
        max_bytes = 0.0
        max_dur = 0.0
        for ev in events:
            if ev.nbytes > max_bytes:
                max_bytes = ev.nbytes
            if ev.duration > max_dur:
                max_dur = ev.duration
        return DimensionScales(nbytes=max_bytes, duration=max_dur)


def _norm_diff(a: float, b: float, scale: float) -> float:
    if scale <= 0.0:
        return 0.0 if a == b else float("inf")
    return abs(a - b) / scale


def scalar_dissimilarity(a: float, b: float, scale: float) -> float:
    """1-D fast path of :func:`dissimilarity`.

    Bit-identical to ``dissimilarity((a,), (b,), (scale,))`` — the same
    expression, minus the tuple/zip machinery — so hot clustering loops
    (one comparison per event per candidate cluster) can use it without
    perturbing threshold semantics.
    """
    if scale <= 0.0:
        return 0.0 if a == b else float("inf")
    return abs(a - b) / scale


def dissimilarity(
    vec_a: Sequence[float], vec_b: Sequence[float], scales: Sequence[float]
) -> float:
    """Chebyshev norm of per-dimension normalised differences."""
    if len(vec_a) != len(vec_b) or len(vec_a) != len(scales):
        raise ValueError("dissimilarity requires equal-length vectors")
    worst = 0.0
    for a, b, s in zip(vec_a, vec_b, scales):
        d = _norm_diff(a, b, s)
        if d > worst:
            worst = d
    return worst


def event_vector(ev) -> tuple[float, ...]:
    """Continuous-parameter vector of an event (payload size only —
    durations are measurements, not call parameters, and the paper
    clusters on call parameters)."""
    return (ev.nbytes,)


def event_scales(scales: DimensionScales) -> tuple[float, ...]:
    return (scales.nbytes,)
