"""Cluster model: nodes, network parameters, and resource-sharing
scenarios (the simulated replacement for the paper's testbed)."""

from repro.cluster.topology import Cluster, NetworkSpec, NodeSpec, paper_testbed
from repro.cluster.contention import Scenario, DEDICATED
from repro.cluster.scenarios import (
    combined_cpu_and_link,
    cpu_all_nodes,
    cpu_one_node,
    link_all,
    link_one,
    paper_scenarios,
    resolve_scenario,
    volatile_scenarios,
)

__all__ = [
    "Cluster",
    "NetworkSpec",
    "NodeSpec",
    "paper_testbed",
    "Scenario",
    "DEDICATED",
    "combined_cpu_and_link",
    "cpu_all_nodes",
    "cpu_one_node",
    "link_all",
    "link_one",
    "paper_scenarios",
    "resolve_scenario",
    "volatile_scenarios",
]
