"""Cluster topology description.

The paper's testbed is ten dual-CPU 1.7 GHz Xeon nodes on switched
Gigabit Ethernet (full crossbar); experiments use four nodes with one
MPI rank per node. :func:`paper_testbed` builds the equivalent model.

The network is modelled at NIC granularity: each node has a full-duplex
NIC (separate TX and RX capacities) into a contention-free crossbar, so
"a link" in the paper's sense (one node's cable to the switch) maps to
one node's NIC pair. Message cost between nodes is
``latency + bytes / fair-share-bandwidth``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import TopologyError


@dataclass(frozen=True)
class NodeSpec:
    """A compute node.

    ``speed`` is the per-CPU speed relative to the reference CPU in
    which workload compute durations are expressed (1.0 = reference).
    """

    name: str
    ncpus: int = 2
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.ncpus < 1:
            raise TopologyError(f"node {self.name!r} must have >= 1 CPU")
        if self.speed <= 0:
            raise TopologyError(f"node {self.name!r} must have positive speed")


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect parameters.

    Defaults approximate 2005-era switched Gigabit Ethernet with MPICH:
    ~60 us end-to-end small-message latency and ~110 MB/s achievable
    point-to-point bandwidth. ``eager_threshold`` is the message size at
    which the point-to-point protocol switches from eager (sender does
    not block on the receiver) to rendezvous (sender blocks until the
    transfer completes). ``handshake_latencies`` is the number of extra
    one-way latencies a rendezvous handshake costs (RTS + CTS = 2).
    """

    latency: float = 60e-6
    bandwidth: float = 80e6
    eager_threshold: int = 64 * 1024
    handshake_latencies: int = 2
    intra_node_latency: float = 2e-6
    memory_bandwidth: float = 1.5e9
    send_overhead: float = 2e-6
    #: One-way latency between *sites* (used only by multi-site
    #: clusters; a metro/WAN hop is milliseconds, not microseconds).
    wan_latency: float = 5e-3
    #: Capacity of each site's uplink into the wide-area network,
    #: shared by all of that site's cross-site flows per direction.
    wan_bandwidth: float = 12.5e6

    def __post_init__(self) -> None:
        if self.latency < 0 or self.intra_node_latency < 0:
            raise TopologyError("latencies must be non-negative")
        if self.bandwidth <= 0 or self.memory_bandwidth <= 0:
            raise TopologyError("bandwidths must be positive")
        if self.eager_threshold < 0:
            raise TopologyError("eager threshold must be non-negative")
        if self.wan_latency < 0 or self.wan_bandwidth <= 0:
            raise TopologyError("invalid WAN parameters")


@dataclass(frozen=True)
class Cluster:
    """A set of nodes joined by a crossbar network.

    ``sites`` optionally assigns each node to a site (grid computing's
    multi-cluster case, §5): traffic between nodes of different sites
    pays ``network.wan_latency`` and shares the sites' WAN uplinks of
    ``network.wan_bandwidth``. ``None`` means one site (pure LAN).
    """

    nodes: tuple[NodeSpec, ...]
    network: NetworkSpec = field(default_factory=NetworkSpec)
    sites: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise TopologyError("cluster needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise TopologyError("node names must be unique")
        if self.sites is not None:
            if len(self.sites) != len(self.nodes):
                raise TopologyError("sites must list one site per node")
            if any(s < 0 for s in self.sites):
                raise TopologyError("site ids must be non-negative")

    @property
    def nnodes(self) -> int:
        return len(self.nodes)

    def site_of(self, node_index: int) -> int:
        """Site id of a node (0 when the cluster is single-site)."""
        if self.sites is None:
            return 0
        return self.sites[node_index]

    @property
    def nsites(self) -> int:
        if self.sites is None:
            return 1
        return max(self.sites) + 1

    def node_index(self, name: str) -> int:
        for i, node in enumerate(self.nodes):
            if node.name == name:
                return i
        raise TopologyError(f"no node named {name!r}")

    def with_network(self, **changes) -> "Cluster":
        """Copy of this cluster with modified network parameters."""
        return replace(self, network=replace(self.network, **changes))

    @staticmethod
    def uniform(
        nnodes: int,
        ncpus: int = 2,
        speed: float = 1.0,
        network: NetworkSpec | None = None,
    ) -> "Cluster":
        """Homogeneous cluster of ``nnodes`` identical nodes."""
        if nnodes < 1:
            raise TopologyError("nnodes must be >= 1")
        nodes = tuple(
            NodeSpec(name=f"node{i}", ncpus=ncpus, speed=speed)
            for i in range(nnodes)
        )
        return Cluster(nodes=nodes, network=network or NetworkSpec())


def paper_testbed(nnodes: int = 4) -> Cluster:
    """The experiment testbed: dual-CPU nodes on Gigabit Ethernet.

    The paper runs its experiments on 4 of the 10 cluster nodes, one
    MPI rank per node.
    """
    return Cluster.uniform(nnodes=nnodes, ncpus=2, speed=1.0)


def two_site_grid(
    nodes_per_site: int = 2,
    ncpus: int = 2,
    network: NetworkSpec | None = None,
) -> Cluster:
    """A two-cluster grid: two LAN islands joined by a WAN link — the
    §5 wide-area validation environment."""
    if nodes_per_site < 1:
        raise TopologyError("nodes_per_site must be >= 1")
    total = 2 * nodes_per_site
    nodes = tuple(
        NodeSpec(name=f"node{i}", ncpus=ncpus) for i in range(total)
    )
    sites = tuple(i // nodes_per_site for i in range(total))
    return Cluster(nodes=nodes, network=network or NetworkSpec(), sites=sites)
