"""The paper's five resource-sharing scenarios (section 4.2).

1. two competing compute-intensive processes on one node;
2. two competing compute-intensive processes on each node;
3. available bandwidth on one link reduced to 10 Mbps;
4. available bandwidth on each link reduced to 10 Mbps;
5. competing processes on one node *and* reduced bandwidth on one link.

"A link" is one node's connection into the crossbar switch, so the
throttle applies to that node's NIC (TX and RX), as iproute2 does on
the node's interface. 10 Mbps = 1.25e6 bytes/s.

By default the scenarios are *stochastic*: competing processes burst
and pause, and throttled-link bandwidth fluctuates around its cap
(:class:`~repro.cluster.contention.LoadModel` /
:class:`~repro.cluster.contention.TrafficModel`), as on a real shared
system. Pass ``steady=True`` for perfectly constant contention
(useful in unit tests and for isolating skeleton-construction error
from environment variance).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.contention import LoadModel, Scenario, TrafficModel

#: 10 Mbps expressed in bytes per second.
TEN_MBPS: float = 10e6 / 8.0

#: The paper creates CPU contention with two competing processes
#: (needed to oversubscribe a dual-CPU node).
COMPETING_PER_NODE: int = 2


def _models(steady: bool) -> tuple[Optional[LoadModel], Optional[TrafficModel]]:
    if steady:
        return None, None
    return LoadModel(), TrafficModel()


def cpu_one_node(
    node: int = 0, nproc: int = COMPETING_PER_NODE, steady: bool = False
) -> Scenario:
    """Scenario 1: competing compute processes on a single node."""
    load, _ = _models(steady)
    return Scenario(
        name="cpu-one-node",
        description=f"{nproc} competing compute processes on node {node}",
        competing={node: nproc},
        load_model=load,
    )


def cpu_all_nodes(
    nnodes: int = 4, nproc: int = COMPETING_PER_NODE, steady: bool = False
) -> Scenario:
    """Scenario 2: competing compute processes on every node."""
    load, _ = _models(steady)
    return Scenario(
        name="cpu-all-nodes",
        description=f"{nproc} competing compute processes on each of {nnodes} nodes",
        competing={i: nproc for i in range(nnodes)},
        load_model=load,
    )


def link_one(node: int = 0, cap: float = TEN_MBPS, steady: bool = False) -> Scenario:
    """Scenario 3: one link throttled to 10 Mbps."""
    _, traffic = _models(steady)
    return Scenario(
        name="link-one",
        description=f"NIC of node {node} throttled to {cap * 8 / 1e6:.0f} Mbps",
        nic_caps={node: cap},
        traffic_model=traffic,
    )


def link_all(nnodes: int = 4, cap: float = TEN_MBPS, steady: bool = False) -> Scenario:
    """Scenario 4: every link throttled to 10 Mbps."""
    _, traffic = _models(steady)
    return Scenario(
        name="link-all",
        description=f"all NICs throttled to {cap * 8 / 1e6:.0f} Mbps",
        nic_caps={i: cap for i in range(nnodes)},
        traffic_model=traffic,
    )


def combined_cpu_and_link(
    cpu_node: int = 0,
    link_node: int = 0,
    nproc: int = COMPETING_PER_NODE,
    cap: float = TEN_MBPS,
    steady: bool = False,
) -> Scenario:
    """Scenario 5: competing processes on one node + one throttled link."""
    load, traffic = _models(steady)
    return Scenario(
        name="cpu+link-one",
        description=(
            f"{nproc} competing processes on node {cpu_node} and NIC of "
            f"node {link_node} throttled to {cap * 8 / 1e6:.0f} Mbps"
        ),
        competing={cpu_node: nproc},
        nic_caps={link_node: cap},
        load_model=load,
        traffic_model=traffic,
    )


def paper_scenarios(nnodes: int = 4, steady: bool = False) -> list[Scenario]:
    """The five sharing scenarios of section 4.2, in paper order."""
    return [
        cpu_one_node(steady=steady),
        cpu_all_nodes(nnodes, steady=steady),
        link_one(steady=steady),
        link_all(nnodes, steady=steady),
        combined_cpu_and_link(steady=steady),
    ]


def volatile_scenarios(
    nnodes: int = 4, seed: int = 0, horizon: float = 300.0
) -> list[Scenario]:
    """Volatile environments beyond the paper's static sharing: fault
    plans of transient, time-varying perturbations (see
    :mod:`repro.faults`). ``seed`` fixes the flap/burst cadence,
    ``horizon`` the simulated time span the plans cover.

    * ``cpu-burst`` — bursty external CPU interference on node 0;
    * ``link-flap`` — node 0's link repeatedly collapsing to 10% of its
      bandwidth and recovering, WAN-style flapping.
    """
    from repro.faults.plan import cpu_burst_plan, flapping_link_plan

    return [
        Scenario(
            name="cpu-burst",
            description="bursty competing CPU interference on node 0",
            fault_plan=cpu_burst_plan(node=0, seed=seed, horizon=horizon),
        ),
        Scenario(
            name="link-flap",
            description="flapping link: node 0 NIC repeatedly degrades to 10%",
            fault_plan=flapping_link_plan(node=0, seed=seed, horizon=horizon),
        ),
    ]


#: Memoized scenario catalogs, keyed by (nnodes, steady).
_CATALOG: dict = {}


def resolve_scenario(name: str, nnodes: int = 4, steady: bool = False):
    """A scenario by name: ``"dedicated"`` (or the baseline's own
    name), any of :func:`paper_scenarios`, or a volatile scenario.

    Shared by the CLI and the prediction service so both resolve the
    same name to the same scenario object (and therefore the same
    scenario fingerprint in the artifact store). Raises
    :class:`~repro.errors.ReproError` for unknown names, listing the
    choices.
    """
    from repro.cluster.contention import DEDICATED
    from repro.errors import ReproError

    if name in (DEDICATED.name, "dedicated"):
        return DEDICATED
    # Scenarios (and their fault plans) are frozen dataclasses, so the
    # catalog is memoized — the serving hot path resolves names on
    # every request and must not rebuild every fault plan each time.
    cache_key = (int(nnodes), bool(steady))
    scenarios = _CATALOG.get(cache_key)
    if scenarios is None:
        scenarios = {
            s.name: s
            for s in paper_scenarios(nnodes, steady=steady)
            + volatile_scenarios(nnodes)
        }
        _CATALOG[cache_key] = scenarios
    if name not in scenarios:
        raise ReproError(
            f"unknown scenario {name!r}; "
            f"choose from {sorted(scenarios) + [DEDICATED.name]}"
        )
    return scenarios[name]
