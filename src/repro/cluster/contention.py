"""Resource-sharing scenario descriptions.

A :class:`Scenario` says how the dedicated testbed is perturbed:
``competing[node]`` always-runnable compute processes are added to a
node (the paper launches two per shared dual-CPU node so the MPI rank
gets 2/3 of a CPU), and ``nic_caps[node]`` replaces that node's NIC
capacity in bytes/s (the paper throttles a link to 10 Mbps with
iproute2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, Optional

from repro.errors import TopologyError
from repro.cluster.topology import Cluster
from repro.faults.plan import FaultPlan


def _frozen(mapping: Mapping[int, object]) -> Mapping[int, object]:
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True)
class LoadModel:
    """Temporal behaviour of a competing compute process.

    Real compute-bound competitors are not perfectly steady: they burst
    and briefly pause (I/O, scheduling). Each competing process
    alternates busy intervals drawn uniformly from ``busy_range`` with
    idle intervals from ``idle_range`` (seconds), from a seeded per-run
    stream. A short skeleton samples only a small window of this
    pattern while the full application averages over it — the source of
    the accuracy/overhead trade-off the paper studies.
    """

    busy_range: tuple[float, float] = (0.4, 1.8)
    idle_range: tuple[float, float] = (0.0, 0.45)

    def __post_init__(self) -> None:
        lo, hi = self.busy_range
        if not (0 < lo <= hi):
            raise TopologyError("busy_range must be positive and ordered")
        lo, hi = self.idle_range
        if not (0 <= lo <= hi):
            raise TopologyError("idle_range must be non-negative and ordered")


@dataclass(frozen=True)
class TrafficModel:
    """Temporal behaviour of competing network traffic.

    A throttled link's *available* bandwidth fluctuates with the
    competing traffic; the capacity is resampled as
    ``cap × (1 ± swing)`` at intervals drawn from ``period_range``.
    """

    swing: float = 0.45
    period_range: tuple[float, float] = (0.3, 1.2)

    def __post_init__(self) -> None:
        if not 0 <= self.swing < 1:
            raise TopologyError("swing must be in [0, 1)")
        lo, hi = self.period_range
        if not (0 < lo <= hi):
            raise TopologyError("period_range must be positive and ordered")


@dataclass(frozen=True)
class Scenario:
    """A perturbation of the dedicated testbed."""

    name: str
    description: str = ""
    #: node index -> number of competing compute-bound processes
    competing: Mapping[int, int] = field(default_factory=dict)
    #: node index -> NIC capacity override, bytes/s (applies to TX and RX)
    nic_caps: Mapping[int, float] = field(default_factory=dict)
    #: Burstiness of competing processes (None = perfectly steady).
    load_model: Optional[LoadModel] = None
    #: Fluctuation of throttled-link bandwidth (None = constant cap).
    traffic_model: Optional[TrafficModel] = None
    #: Deterministic fault events applied during the run (None/empty =
    #: no faults; see :mod:`repro.faults`).
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "competing", _frozen(self.competing))
        object.__setattr__(self, "nic_caps", _frozen(self.nic_caps))
        for node, count in self.competing.items():
            if count < 0:
                raise TopologyError(f"negative competing count on node {node}")
        for node, cap in self.nic_caps.items():
            if cap <= 0:
                raise TopologyError(f"non-positive NIC cap on node {node}")

    @property
    def is_dedicated(self) -> bool:
        return not self.competing and not self.nic_caps

    def validate_against(self, cluster: Cluster) -> None:
        """Raise if the scenario references nodes the cluster lacks."""
        for node in list(self.competing) + list(self.nic_caps):
            if not 0 <= node < cluster.nnodes:
                raise TopologyError(
                    f"scenario {self.name!r} references node {node}, "
                    f"cluster has {cluster.nnodes} nodes"
                )
        if self.fault_plan is not None:
            # Rank-targeted events are checked again at run start, when
            # the rank count is known.
            self.fault_plan.validate_against(cluster.nnodes)

    def describe(self) -> str:
        parts = []
        for node, count in sorted(self.competing.items()):
            parts.append(f"{count} competing process(es) on node {node}")
        for node, cap in sorted(self.nic_caps.items()):
            parts.append(f"NIC of node {node} capped at {cap / 1e6:.3g} MB/s")
        if self.fault_plan is not None and not self.fault_plan.is_empty:
            parts.append(self.fault_plan.describe())
        return "; ".join(parts) if parts else "dedicated (no sharing)"


#: The unperturbed testbed.
DEDICATED = Scenario(name="dedicated", description="no competing load or traffic")
