"""Latency-aware communication scale-down.

The paper (§3.3): "scaling down a communication operation by reducing
the number of bytes exchanged is not accurate ... communication
operations have two time components; latency, which is fixed for all
message sizes, and message transfer time, which can be scaled down
linearly. ... A more accurate scaling down cannot be achieved without
making some assumptions about the execution environments."

This extension makes that assumption explicit: given nominal network
parameters (latency ``L``, bandwidth ``B``), it chooses the scaled
payload so the *estimated message time* scales by the fraction ``f``::

    time(bytes)      = L + bytes / B
    want             = f * time(bytes)
    scaled_bytes     = max(0, (want - L) * B)

When ``f * time(bytes) <= L`` the message cannot be made short enough
(latency floor); the payload drops to zero and the residual error is
unavoidable — which is precisely why the paper calls byte-reduction a
last resort.
"""

from __future__ import annotations

from repro.cluster.topology import NetworkSpec
from repro.core.scale import CommScaler
from repro.core.signature import EventStats


def make_latency_aware_scaler(network: NetworkSpec) -> CommScaler:
    """Build a :data:`~repro.core.scale.CommScaler` that compensates
    for the fixed latency component using ``network``'s nominal
    parameters."""
    latency = network.latency
    bandwidth = network.bandwidth

    def scaler(leaf: EventStats, fraction: float) -> float:
        nbytes = leaf.mean_bytes
        if nbytes <= 0:
            return 0.0
        full_time = latency + nbytes / bandwidth
        want = fraction * full_time
        return max(0.0, (want - latency) * bandwidth)

    return scaler
