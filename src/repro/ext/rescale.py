"""Retarget an existing skeleton to a new execution time.

Building a skeleton requires tracing the application once; changing
the desired skeleton size afterwards only requires re-scaling the
stored execution signature — no new trace. This utility performs that
cheap retargeting (useful when calibrating the smallest skeleton that
still predicts well, as in the paper's §3.4 search).
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.core.construct import SkeletonBundle
from repro.core.goodness import shortest_good_skeleton
from repro.core.scale import CommScaler, scale_signature
from repro.core.skeleton import GapModel, check_alignment, mean_gap_model, skeleton_program
from repro.errors import SkeletonError, SkeletonQualityWarning


def retarget_skeleton(
    bundle: SkeletonBundle,
    target_seconds: float,
    app_dedicated_seconds: Optional[float] = None,
    gap_model: GapModel = mean_gap_model,
    comm_scaler: Optional[CommScaler] = None,
    warn: bool = True,
) -> SkeletonBundle:
    """Produce a new bundle for a different skeleton size from the
    signature already stored in ``bundle``.

    Note: the compression ratio was chosen for the original K (the
    paper's Q = K/2 rule); retargeting reuses it, which is exact when
    shrinking the skeleton and merely conservative when growing it.
    """
    if target_seconds <= 0:
        raise SkeletonError("target_seconds must be positive")
    if app_dedicated_seconds is None:
        app_dedicated_seconds = bundle.K * (bundle.target_seconds or 0.0)
    if app_dedicated_seconds <= 0:
        raise SkeletonError("cannot derive application time from bundle")
    K = max(1.0, app_dedicated_seconds / target_seconds)
    scaled = scale_signature(bundle.signature, K, comm_scaler=comm_scaler)
    check_alignment(scaled)
    program = skeleton_program(scaled, gap_model=gap_model)
    goodness = shortest_good_skeleton(bundle.signature)
    flagged = goodness.flags(target_seconds)
    if flagged and warn:
        warnings.warn(
            f"retargeted {target_seconds:.3g}s skeleton is below the "
            f"estimated shortest good skeleton "
            f"({goodness.min_good_seconds:.3g}s)",
            SkeletonQualityWarning,
            stacklevel=2,
        )
    return SkeletonBundle(
        program=program,
        signature=bundle.signature,
        scaled=scaled,
        K=K,
        target_seconds=target_seconds,
        goodness=goodness,
        flagged=flagged,
    )
