"""Prediction intervals from repeated skeleton probes.

A single skeleton probe samples one window of the shared system's
contention; on a bursty system (the realistic case, and our stochastic
scenarios) repeated short probes cheaply characterise the *range* of
expected application performance — the natural refinement of the
paper's single-probe protocol, at a cost that is still a tiny fraction
of one application run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.contention import Scenario
from repro.errors import ReproError
from repro.predict.predictor import SkeletonPredictor
from repro.util.rng import derive_seed
from repro.util.stats import mean


@dataclass(frozen=True)
class IntervalPrediction:
    """Spread of predictions over repeated probes."""

    scenario_name: str
    n_probes: int
    predictions: tuple[float, ...]
    probe_cost_seconds: float  # total skeleton time spent probing

    @property
    def low(self) -> float:
        return min(self.predictions)

    @property
    def expected(self) -> float:
        return mean(list(self.predictions))

    @property
    def high(self) -> float:
        return max(self.predictions)

    def covers(self, actual_seconds: float, margin: float = 0.0) -> bool:
        """Whether the measured time falls inside the (optionally
        margin-widened) predicted interval."""
        span = self.high - self.low
        return (
            self.low - margin * span
            <= actual_seconds
            <= self.high + margin * span
        )


def predict_interval(
    predictor: SkeletonPredictor,
    scenario: Scenario,
    n_probes: int = 5,
    base_seed: int = 0,
) -> IntervalPrediction:
    """Probe ``n_probes`` times with distinct environment samples and
    return the min/mean/max prediction."""
    if n_probes < 1:
        raise ReproError("n_probes must be >= 1")
    predictions = []
    total_probe = 0.0
    for i in range(n_probes):
        seed = derive_seed(base_seed, "multiprobe", scenario.name, i)
        probe = predictor.probe(scenario, seed=seed)
        total_probe += probe
        predictions.append(probe * predictor.ratio)
    return IntervalPrediction(
        scenario_name=scenario.name,
        n_probes=n_probes,
        predictions=tuple(predictions),
        probe_cost_seconds=total_probe,
    )
