"""Extensions beyond the paper's implemented framework — its §5
limitations and stated future work, each exercised by an ablation
benchmark:

* :mod:`repro.ext.latency_aware` — latency-compensated communication
  scale-down ("The implementation can be improved to better manage
  scaling down of communication").
* :mod:`repro.ext.distribution` — distribution-preserving compute
  reproduction ("A more accurate approach that considers frequency
  distribution of the duration of compute events will be taken in the
  future").
* :mod:`repro.ext.memmodel` — a working-set/cache rate model showing
  why skeletons without memory behaviour cannot predict across memory
  architectures ("Prediction across CPU and memory architectures
  cannot be made without better modeling of ... memory access
  patterns").
* :mod:`repro.ext.rescale` — cheap retargeting of an existing
  signature to a new skeleton size.
* :mod:`repro.ext.remap` — projecting a signature onto a different
  process count ("Additional work is needed to scale predictions
  across different numbers of processors").
* :mod:`repro.ext.multiprobe` — repeated skeleton probes for
  prediction intervals on noisy shared systems.
"""

from repro.ext.latency_aware import make_latency_aware_scaler
from repro.ext.distribution import distribution_gap_model
from repro.ext.memmodel import MemoryHierarchy, effective_speed
from repro.ext.rescale import retarget_skeleton
from repro.ext.remap import remap_signature
from repro.ext.multiprobe import IntervalPrediction, predict_interval
from repro.ext.datasize import project_datasize

__all__ = [
    "project_datasize",
    "make_latency_aware_scaler",
    "distribution_gap_model",
    "MemoryHierarchy",
    "effective_speed",
    "retarget_skeleton",
    "remap_signature",
    "IntervalPrediction",
    "predict_interval",
]
