"""A minimal memory-hierarchy rate model.

The paper (§2, §5) limits its skeletons to "communication sequences
and coarse computation behavior", noting that "reproduction of memory
accesses ... is critical for performance estimation across different
processor and memory architectures, but not essential for simple CPU
and network sharing scenarios" (their companion work [30] addresses
memory replication).

This module provides the missing piece at the modelling level: a
node's effective compute speed for a workload with a given working set
degrades once the working set spills out of cache. It lets examples
demonstrate *why* a gap-replay skeleton mispredicts across memory
architectures: two machines with equal nominal speed but different
cache sizes run the same skeleton identically while running the real
application differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class MemoryHierarchy:
    """A simple two-level memory model for one node."""

    cache_bytes: int
    #: Relative compute speed when the working set fits in cache.
    hit_speed: float = 1.0
    #: Relative compute speed when it misses to memory.
    miss_speed: float = 0.35

    def __post_init__(self) -> None:
        if self.cache_bytes <= 0:
            raise ReproError("cache size must be positive")
        if not (0 < self.miss_speed <= self.hit_speed):
            raise ReproError("need 0 < miss_speed <= hit_speed")


def effective_speed(hierarchy: MemoryHierarchy, working_set_bytes: float) -> float:
    """Effective speed for a workload with the given working set.

    A smooth interpolation between hit and miss speed based on the
    fraction of the working set that fits in cache (a standard
    first-order cache model: accesses to the resident fraction run at
    hit speed, the rest at miss speed).
    """
    if working_set_bytes <= 0:
        return hierarchy.hit_speed
    resident = min(1.0, hierarchy.cache_bytes / working_set_bytes)
    return resident * hierarchy.hit_speed + (1.0 - resident) * hierarchy.miss_speed
