"""Remap a signature to a different process count (§5: "Additional
work is needed to scale predictions across different numbers of
processors and different size data sets").

This implements the natural first-order transformation the paper
leaves as future work, with its assumptions stated explicitly:

* **SPMD offset symmetry** — every point-to-point peer is interpreted
  as a rank-relative offset ``(peer - rank) mod P`` and re-instantiated
  as ``(rank' + offset) mod P'``. Exact for rings, shifts, and other
  translation-invariant patterns; an approximation for 2D grids whose
  row length changes.
* **Work scaling** — under strong scaling the same total work spreads
  over P' ranks: compute gaps scale by ``P/P'``; point-to-point payload
  scales by ``bytes_scale`` (default ``P/P'``, appropriate for
  1D-partitioned data; surface-dominated halos scale more slowly, so
  the factor is a parameter).
* **Collectives** carry over with per-rank payloads scaled the same
  way.

The donor rank's structure is replicated to all new ranks, so the
source signature must be structurally uniform across ranks (checked);
workloads with distinguished ranks (master/worker) are rejected.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.signature import EventStats, LoopNode, Node, RankSignature, Signature
from repro.errors import SkeletonError

_P2P_CALLS = frozenset({
    "MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv", "MPI_Sendrecv",
})
_ROOTED = frozenset({"MPI_Bcast", "MPI_Reduce", "MPI_Gather", "MPI_Scatter"})


def _structure_key(nodes: list[Node]) -> tuple:
    out = []
    for node in nodes:
        if isinstance(node, LoopNode):
            out.append(("loop", node.count, _structure_key(node.body)))
        else:
            out.append(("ev", node.call, node.nreqs))
    return tuple(out)


def _remap_node(
    node: Node,
    old_rank: int,
    new_rank: int,
    old_size: int,
    new_size: int,
    compute_scale: float,
    bytes_scale: float,
) -> Node:
    if isinstance(node, LoopNode):
        return LoopNode(
            body=[
                _remap_node(c, old_rank, new_rank, old_size, new_size,
                            compute_scale, bytes_scale)
                for c in node.body
            ],
            count=node.count,
        )
    leaf: EventStats = node
    peer = leaf.peer
    src = leaf.src
    if leaf.call in _P2P_CALLS and peer >= 0:
        offset = (peer - old_rank) % old_size
        if offset == 0:
            raise SkeletonError("cannot remap a self-referential peer")
        peer = (new_rank + offset) % new_size
    if leaf.call == "MPI_Sendrecv" and src >= 0:
        offset = (src - old_rank) % old_size
        src = (new_rank + offset) % new_size
    if leaf.call in _ROOTED and peer >= old_size:
        raise SkeletonError("collective root outside communicator")
    # Rooted collectives keep their root if it exists in the new
    # communicator; otherwise fold it to rank 0.
    if leaf.call in _ROOTED and peer >= new_size:
        peer = 0
    return replace(
        leaf,
        peer=peer,
        src=src,
        mean_bytes=leaf.mean_bytes * bytes_scale,
        mean_gap=leaf.mean_gap * compute_scale,
        mean_duration=leaf.mean_duration,
        gap_samples=[g * compute_scale for g in leaf.gap_samples],
    )


def remap_signature(
    signature: Signature,
    new_nranks: int,
    compute_scale: Optional[float] = None,
    bytes_scale: Optional[float] = None,
) -> Signature:
    """Project a P-rank signature onto ``new_nranks`` ranks.

    Raises :class:`SkeletonError` when the source ranks are not
    structurally uniform (the offset-symmetry assumption would be
    violated) or when a peer offset cannot be preserved.
    """
    if new_nranks < 1:
        raise SkeletonError("new_nranks must be >= 1")
    old_size = signature.nranks
    if old_size < 2:
        raise SkeletonError("remapping needs a multi-rank source signature")

    keys = {_structure_key(r.nodes) for r in signature.ranks}
    if len(keys) != 1:
        raise SkeletonError(
            "source signature is not structurally uniform across ranks; "
            "offset-based remapping would change its semantics"
        )

    if compute_scale is None:
        compute_scale = old_size / new_nranks
    if bytes_scale is None:
        bytes_scale = old_size / new_nranks

    donor = signature.ranks[0]
    ranks = []
    for new_rank in range(new_nranks):
        nodes = [
            _remap_node(n, donor.rank, new_rank, old_size, new_nranks,
                        compute_scale, bytes_scale)
            for n in donor.nodes
        ]
        ranks.append(
            RankSignature(
                rank=new_rank,
                nodes=nodes,
                tail_gap=donor.tail_gap * compute_scale,
            )
        )
    return Signature(
        program_name=f"{signature.program_name}@p{new_nranks}",
        nranks=new_nranks,
        ranks=ranks,
        threshold=signature.threshold,
        compression_ratio=signature.compression_ratio,
        trace_events=signature.trace_events,
    )
