"""Distribution-preserving compute reproduction.

The paper (§4.4): "While constructing a skeleton we set the duration
of compute operations within loops to their average duration across
iterations of the loop. A more accurate approach that considers
frequency distribution of the duration of compute events will be
taken in the future." — and it speculates this averaging is why
prediction error rises under *unbalanced* sharing.

This extension implements that future work: instead of replaying the
mean gap, the skeleton replays gaps *sampled from the recorded
per-occurrence distribution* (strided so a skeleton running 1/K of the
iterations still sweeps the whole distribution). Compare with
``benchmarks/bench_ablation_compute_distribution.py``.
"""

from __future__ import annotations

import math

from repro.core.signature import EventStats


def _coprime_stride(n: int) -> int:
    """A stride near n/φ that is coprime with n, so iterating
    ``(i * stride) mod n`` visits every sample exactly once per period
    in a low-discrepancy order."""
    stride = max(1, int(round(n * 0.618033988)))
    while math.gcd(stride, n) != 1:
        stride += 1
    return stride


def distribution_gap_model(leaf: EventStats, iteration: int) -> float:
    """Gap model that replays the recorded gap distribution.

    Deterministic: occurrence ``iteration`` of a leaf replays sample
    ``(iteration * stride) mod n`` of its recorded gaps, with a stride
    coprime to n, so even a few skeleton iterations see representative
    spread and a full period sweeps every recorded sample.
    """
    samples = leaf.gap_samples
    n = len(samples)
    if n == 0:
        return leaf.mean_gap
    if n == 1:
        return samples[0]
    return samples[(iteration * _coprime_stride(n)) % n]
