"""Project a signature to a different problem size (§5: "... and
different size data sets").

For grid-structured SPMD codes, changing the problem size N scales the
parts of the signature differently:

* compute per iteration scales with local *volume* — N^3 for a 3D
  grid;
* halo/pencil messages scale with local *surface* — N^2;
* iteration counts and latency-bound control messages do not scale.

:func:`project_datasize` applies these exponents to a signature, given
the linear size ratio. The exponents default to the 3D-grid case and
are parameters, because the right values are application knowledge
(e.g. CG's vectors scale linearly, IS's keys linearly) — which is
precisely why the paper lists data-set scaling as an open problem
rather than a feature.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.signature import EventStats, LoopNode, Node, RankSignature, Signature
from repro.errors import SkeletonError

#: Messages at or below this size are treated as latency-bound control
#: traffic and left unscaled.
CONTROL_MESSAGE_BYTES = 256


def _project_node(
    node: Node, compute_factor: float, bytes_factor: float
) -> Node:
    if isinstance(node, LoopNode):
        return LoopNode(
            body=[
                _project_node(c, compute_factor, bytes_factor)
                for c in node.body
            ],
            count=node.count,
        )
    leaf: EventStats = node
    nbytes = leaf.mean_bytes
    if nbytes > CONTROL_MESSAGE_BYTES:
        nbytes = nbytes * bytes_factor
    return replace(
        leaf,
        mean_bytes=nbytes,
        mean_gap=leaf.mean_gap * compute_factor,
        mean_duration=leaf.mean_duration,
        gap_samples=[g * compute_factor for g in leaf.gap_samples],
    )


def project_datasize(
    signature: Signature,
    size_ratio: float,
    compute_exponent: float = 3.0,
    surface_exponent: float = 2.0,
) -> Signature:
    """Project a signature to a problem whose linear size is
    ``size_ratio`` times the traced one.

    ``compute_exponent``/``surface_exponent`` translate the linear
    ratio into compute-work and message-payload factors (3 and 2 for a
    3D volume/surface split; use 1 and 1 for linearly-partitioned data
    like CG vectors or IS keys).
    """
    if size_ratio <= 0:
        raise SkeletonError("size_ratio must be positive")
    compute_factor = size_ratio ** compute_exponent
    bytes_factor = size_ratio ** surface_exponent
    ranks = [
        RankSignature(
            rank=r.rank,
            nodes=[
                _project_node(n, compute_factor, bytes_factor)
                for n in r.nodes
            ],
            tail_gap=r.tail_gap * compute_factor,
        )
        for r in signature.ranks
    ]
    return Signature(
        program_name=f"{signature.program_name}@x{size_ratio:g}",
        nranks=signature.nranks,
        ranks=ranks,
        threshold=signature.threshold,
        compression_ratio=signature.compression_ratio,
        trace_events=signature.trace_events,
    )
