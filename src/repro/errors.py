"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An inconsistency inside the discrete-event simulator."""


class DeadlockError(SimulationError):
    """The simulated program can make no further progress.

    Raised when every live rank is blocked (e.g. on an unmatched receive
    or an unpaired collective) and no event remains in the queue.
    """

    def __init__(
        self,
        message: str,
        blocked_ranks: list[int] | None = None,
        blocked_ops: dict[int, str] | None = None,
    ):
        super().__init__(message)
        #: Ranks that were blocked when the deadlock was detected.
        self.blocked_ranks: list[int] = blocked_ranks or []
        #: rank -> description of the operation it was blocked in
        #: (call name plus peer/tag), when known.
        self.blocked_ops: dict[int, str] = blocked_ops or {}


class ProgramError(SimulationError):
    """A simulated program used the message-passing API incorrectly."""


class TopologyError(ReproError):
    """Invalid cluster description (unknown node, bad capacity, ...)."""


class TraceError(ReproError):
    """Malformed trace data or trace file."""


class SignatureError(ReproError):
    """Invalid execution-signature structure or construction failure."""


class SkeletonError(ReproError):
    """Skeleton generation failed (e.g. impossible scaling factor)."""


class SkeletonQualityWarning(UserWarning):
    """Warning issued when a requested skeleton is smaller than the
    estimated shortest *good* skeleton (paper section 3.4)."""


class FaultError(ReproError):
    """Invalid fault plan (unknown event kind, bad window, bad target)."""


class InjectedCrashError(SimulationError):
    """A fault plan crashed a rank with no restart; the run is lost."""

    def __init__(self, message: str, rank: int = -1, t: float = float("nan")):
        super().__init__(message)
        self.rank = rank
        self.t = t


class RunTimeoutError(ReproError):
    """A run exceeded its wall-clock budget and was aborted."""


class ExperimentError(ReproError):
    """Experiment configuration or execution failure."""


class StoreError(ReproError):
    """Artifact-store corruption or I/O failure (see :mod:`repro.store`)."""


class WorkerCrashError(ExperimentError):
    """A campaign worker process died (killed or crashed) while holding
    a task; raised when the task exhausts its re-queue budget."""


class TaskTimeoutError(ExperimentError):
    """A campaign task exceeded its supervision deadline: the worker
    holding it was hung (alive but making no progress) and was
    cancelled by the :class:`repro.parallel.supervisor.Supervisor`.
    Recorded as the failure cause when the task exhausts its re-queue
    budget."""


class WorkloadError(ReproError):
    """Invalid workload parameters (unsupported class, rank count, ...)."""


class ServeError(ReproError):
    """Prediction-service failure: bad request, unknown alias, or a
    registry publish that could not be persisted (see :mod:`repro.serve`)."""


class RemoteComputeError(ServeError):
    """A prediction computed in a serve worker process failed; carries
    the worker-side exception class name and the retry count so the
    client-visible error reply matches a campaign failure record."""

    def __init__(self, message: str, error_type: str = "RemoteComputeError",
                 attempts: int = 1):
        super().__init__(message)
        self.error_type = error_type
        self.attempts = attempts
