"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An inconsistency inside the discrete-event simulator."""


class DeadlockError(SimulationError):
    """The simulated program can make no further progress.

    Raised when every live rank is blocked (e.g. on an unmatched receive
    or an unpaired collective) and no event remains in the queue.
    """

    def __init__(self, message: str, blocked_ranks: list[int] | None = None):
        super().__init__(message)
        #: Ranks that were blocked when the deadlock was detected.
        self.blocked_ranks: list[int] = blocked_ranks or []


class ProgramError(SimulationError):
    """A simulated program used the message-passing API incorrectly."""


class TopologyError(ReproError):
    """Invalid cluster description (unknown node, bad capacity, ...)."""


class TraceError(ReproError):
    """Malformed trace data or trace file."""


class SignatureError(ReproError):
    """Invalid execution-signature structure or construction failure."""


class SkeletonError(ReproError):
    """Skeleton generation failed (e.g. impossible scaling factor)."""


class SkeletonQualityWarning(UserWarning):
    """Warning issued when a requested skeleton is smaller than the
    estimated shortest *good* skeleton (paper section 3.4)."""


class ExperimentError(ReproError):
    """Experiment configuration or execution failure."""


class WorkloadError(ReproError):
    """Invalid workload parameters (unsupported class, rank count, ...)."""
