"""Command-line interface.

Subcommands mirror the paper's workflow:

* ``trace``     — run a benchmark on the (simulated) dedicated testbed
  and write its execution trace.
* ``skeleton``  — build a performance skeleton from a trace file and
  report its properties (K, threshold, compression, minimum good
  skeleton size).
* ``codegen``   — emit the synthetic C/MPI skeleton source.
* ``predict``   — predict a benchmark's time under a sharing scenario
  via its skeleton and compare with the measured time.
* ``experiment``— run the full evaluation campaign and print a chosen
  figure (2–7) or the complete report.
* ``timeline``  — run a benchmark with the timeline recorder attached
  and export a Perfetto-loadable Chrome trace plus a per-rank
  activity summary.
* ``diagnose``  — time-resolved diagnosis of a benchmark under a
  scenario: per-rank compute/wait/transfer/collective breakdown with
  classified wait states, the run's critical path, and the skeleton
  prediction's divergence report (see :mod:`repro.diagnose`).
* ``profile``   — run the trace → skeleton pipeline with the metrics
  registry enabled and print the instrumentation report.
* ``trace validate`` — check a trace file's structure; with
  ``--salvage``, recover the valid prefix of a corrupt file.
* ``faults``    — render a fault plan (``faults render``) or run a
  benchmark under one (``faults apply``); see :mod:`repro.faults`.
* ``store``     — inspect and maintain the content-addressed artifact
  store (``ls``, ``verify``, ``gc``, ``prune``); see
  :mod:`repro.store` and ``docs/SCALING.md``.
* ``doctor``    — scan-and-repair the cache and campaign journals:
  quarantine corrupt objects, truncate torn journal lines, enforce a
  byte quota with LRU eviction (:mod:`repro.store.fsck`; see
  ``docs/ROBUSTNESS.md``).
* ``serve`` / ``publish`` / ``call`` — the online prediction service:
  a JSON-over-TCP daemon answering skeleton predictions from the
  artifact store, a registry publisher, and a one-shot client
  (:mod:`repro.serve`; see ``docs/SERVING.md``). ``call --trace``
  prints the server-side span tree for the request.
* ``trace-dump`` — inspect a flight-recorder dump written by the
  daemon (span trees, slowest requests, Perfetto export); see
  :mod:`repro.obs.tracing` and ``docs/OBSERVABILITY.md``.

Every command also accepts a global ``--metrics-out metrics.json``
flag that enables the metrics registry for the whole invocation and
writes its snapshot on exit.

Examples::

    repro-skeleton trace cg --klass B -o cg.trace
    repro-skeleton skeleton cg.trace --target 5
    repro-skeleton codegen cg.trace --target 5 -o cg_skeleton.c
    repro-skeleton predict cg --target 5 --scenario cpu-one-node
    repro-skeleton experiment --figure 7
    repro-skeleton timeline cg --klass S -o cg_timeline.json
    repro-skeleton diagnose cg --klass S --scenario cpu-one-node
    repro-skeleton profile cg --klass S --scenario cpu-one-node
    repro-skeleton --metrics-out m.json predict cg --target 5
    repro-skeleton trace validate cg.trace --salvage -o repaired.trace
    repro-skeleton faults render --stock flapping-link
    repro-skeleton faults apply cg --klass S --stock cpu-burst
    repro-skeleton experiment --workers 4 -v
    repro-skeleton experiment --workers 4 --task-timeout 300
    repro-skeleton store ls
    repro-skeleton store gc --max-age-days 30 --max-mbytes 512
    repro-skeleton doctor --max-cache-bytes 536870912
    repro-skeleton serve --port 7077 --workers 2
    repro-skeleton serve --flight-recorder flight.json --access-log
    repro-skeleton publish cg.s4 cg --klass S --target 0.05
    repro-skeleton call predict --params '{"alias": "cg.s4"}'
    repro-skeleton call predict --params '{"alias": "cg.s4"}' --trace
    repro-skeleton trace-dump flight.json --slowest 5
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Optional, Sequence

from repro.cluster import paper_testbed
from repro.core import build_skeleton, generate_c_source
from repro.errors import ReproError
from repro.experiments import ExperimentConfig
from repro.experiments import figures as fig_mod
from repro.experiments.report import full_report
from repro.sim import run_program
from repro.trace import read_trace, trace_program, write_trace
from repro.util.timebase import format_duration
from repro.workloads import available_benchmarks, get_program


def _add_common_bench_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("benchmark", choices=available_benchmarks())
    p.add_argument("--klass", default="B", help="problem class (S/W/A/B)")
    p.add_argument("--nprocs", type=int, default=4)
    p.add_argument("--seed", type=int, default=12345, help="workload seed")


def _resolve_scenario(name: str):
    """Scenario by name, or the dedicated baseline for 'dedicated'."""
    from repro.cluster import resolve_scenario

    return resolve_scenario(name)


def _cmd_trace(args: argparse.Namespace) -> int:
    cluster = paper_testbed()
    program = get_program(args.benchmark, args.klass, args.nprocs, args.seed)
    trace, result = trace_program(program, cluster)
    write_trace(trace, args.output)
    print(
        f"{program.name}: dedicated run {format_duration(result.elapsed)}, "
        f"{trace.n_calls()} MPI calls recorded -> {args.output}"
    )
    return 0


def _cmd_skeleton(args: argparse.Namespace) -> int:
    trace = read_trace(args.trace)
    bundle = build_skeleton(trace, target_seconds=args.target)
    g = bundle.goodness
    print(f"application      : {trace.program_name}")
    print(f"traced time      : {format_duration(trace.elapsed)}")
    print(f"scaling factor K : {bundle.K:.2f}")
    print(f"similarity thr   : {bundle.signature.threshold:.3f}")
    print(f"compression      : {bundle.signature.compression_ratio:.1f}x "
          f"({bundle.signature.trace_events} events -> "
          f"{bundle.signature.n_leaves()} signature entries)")
    print(f"skeleton estimate: {format_duration(bundle.estimate)}")
    print(f"min good skeleton: {format_duration(g.min_good_seconds)}")
    if bundle.flagged:
        print("WARNING: requested size is below the minimum good skeleton")
    return 0


def _cmd_signature(args: argparse.Namespace) -> int:
    """Compress a trace into a signature file, or inspect one."""
    from repro.core import compress_trace, read_signature, write_signature
    from repro.core.signature import LoopNode

    if args.trace.endswith(".sig") or args.inspect:
        sig = read_signature(args.trace)
    else:
        trace = read_trace(args.trace)
        sig = compress_trace(trace, target_ratio=args.ratio)
        if args.output:
            write_signature(sig, args.output)
            print(f"wrote {args.output}")
    from repro.core.render import render_signature

    print(render_signature(sig, ranks=args.show_ranks, max_depth=4))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Descriptive statistics of a trace file."""
    from repro.trace import imbalance_ratio, message_size_histogram, trace_stats
    from repro.util.charts import bar_chart

    trace = read_trace(args.trace)
    stats = trace_stats(trace)
    print(f"program  : {stats['program']} under {stats['scenario']}")
    print(f"elapsed  : {format_duration(stats['elapsed'])}")
    print(f"calls    : {stats['n_calls']}")
    print(f"MPI time : {stats['mpi_percent']:.1f}%")
    print(f"imbalance: {imbalance_ratio(trace):.3f} (max/min rank compute)")
    print()
    print(bar_chart("calls by type",
                    dict(sorted(stats["calls_by_type"].items()))))
    print()
    histogram = {k: v for k, v in message_size_histogram(trace).items() if v}
    print(bar_chart("calls by payload size", histogram))
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    trace = read_trace(args.trace)
    bundle = build_skeleton(trace, target_seconds=args.target)
    source = generate_c_source(bundle.scaled, name=trace.program_name)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(source)
        print(f"wrote {args.output} ({len(source.splitlines())} lines)")
    else:
        print(source)
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.cluster import resolve_scenario
    from repro.predict.metrics import prediction_error_percent
    from repro.predict.online import compute_prediction, normalize_request
    from repro.store import ArtifactStore, PipelineCache, canonical_json

    cluster = paper_testbed()
    params = normalize_request(
        args.benchmark,
        args.klass,
        args.nprocs,
        args.seed,
        target=args.target,
        scenario=args.scenario,
        env_seed=args.env_seed,
    )
    cache = PipelineCache(
        ArtifactStore(args.cache_dir), cluster, enabled=not args.no_cache
    )
    if not args.json:
        print(f"predicting {args.benchmark}.{args.klass} under "
              f"{args.scenario} (store-backed pipeline) ...")
    payload = compute_prediction(params, cache, cluster)
    if args.json:
        # Canonical JSON: byte-identical to a served prediction for the
        # same inputs (tests/test_serve.py pins this).
        print(canonical_json(payload))
        return 0
    print(f"app dedicated    : "
          f"{format_duration(payload['app_dedicated_seconds'])}")
    print(f"skeleton probe   : {format_duration(payload['probe_seconds'])}")
    print(f"predicted time   : "
          f"{format_duration(payload['predicted_seconds'])}")
    if args.verify:
        scenario = resolve_scenario(args.scenario)
        program = get_program(
            args.benchmark, args.klass, args.nprocs, args.seed
        )
        actual = run_program(program, cluster, scenario, seed=1).elapsed
        error = prediction_error_percent(
            payload["predicted_seconds"], actual
        )
        print(f"measured time    : {format_duration(actual)}")
        print(f"prediction error : {error:.1f}%")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Validate skeleton predictions for one benchmark across scenarios."""
    from repro.predict import validate_skeletons

    cluster = paper_testbed()
    program = get_program(args.benchmark, args.klass, args.nprocs, args.seed)
    print(f"validating {program.name} (trace + "
          f"{len(args.targets)} skeleton sizes x 5 scenarios) ...")
    report = validate_skeletons(
        program, cluster, targets=tuple(args.targets)
    )
    print(report.render())
    print(f"average error: {report.average_error():.1f}%   "
          f"worst: {report.worst().error_percent:.1f}% "
          f"({report.worst().scenario_name}, "
          f"{report.worst().target_seconds:g}s)")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    """Run a benchmark with the timeline recorder; export Chrome trace."""
    from repro.obs import TimelineRecorder

    if args.samples < 0:
        raise ReproError("--samples must be >= 0")
    cluster = paper_testbed()
    scenario = _resolve_scenario(args.scenario)
    program = get_program(args.benchmark, args.klass, args.nprocs, args.seed)
    # Pick the sampling period from a quick untraced run so that any
    # run length yields ~args.samples utilization samples.
    sample_period = 0.0
    if args.samples > 0:
        sizing = run_program(program, cluster, scenario, seed=args.env_seed)
        sample_period = sizing.elapsed / args.samples
    recorder = TimelineRecorder(
        program_name=program.name,
        scenario_name=scenario.name,
        sample_period=sample_period,
    )
    result = run_program(
        program, cluster, scenario, hook=recorder, seed=args.env_seed
    )
    recorder.write_chrome_trace(args.output)
    trace = recorder.to_chrome_trace()
    print(
        f"{program.name} under {scenario.name}: "
        f"{format_duration(result.elapsed)}, "
        f"{len(trace['traceEvents'])} trace events -> {args.output}"
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    print()
    print(recorder.render_summary())
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    """Time-resolved diagnosis + divergence report for one benchmark."""
    import json

    from repro.diagnose import (
        diagnose_run,
        explain_divergence,
        extract_critical_path,
    )

    cluster = paper_testbed()
    scenario = _resolve_scenario(args.scenario)
    program = get_program(args.benchmark, args.klass, args.nprocs, args.seed)
    print(f"tracing {program.name} on the dedicated testbed ...")
    trace, dedicated = trace_program(program, cluster)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        bundle = build_skeleton(trace, target_seconds=args.target)
    print(
        f"diagnosing {program.name} vs its {args.target:g}s skeleton "
        f"under {scenario.name} ..."
    )
    collector, _ = diagnose_run(
        program, cluster, scenario, seed=args.env_seed
    )
    critical = extract_critical_path(collector)
    report = explain_divergence(
        program,
        bundle.program,
        cluster,
        scenario,
        app_dedicated_seconds=dedicated.elapsed,
        app_seed=args.env_seed,
    )
    print()
    print(collector.render_breakdown())
    print()
    print(critical.render())
    print()
    print(report.render())
    if args.output:
        doc = {
            "program": program.name,
            "scenario": scenario.name,
            "breakdown": {
                str(r): cats
                for r, cats in collector.detailed_breakdown().items()
            },
            "wait_states": collector.wait_state_totals(),
            "critical_path": critical.to_dict(),
            "divergence": report.to_dict(),
        }
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"\ndiagnosis report written to {args.output}")
    if args.timeline:
        collector.write_chrome_trace(args.timeline)
        print(f"timeline (with wait-state tracks) written to {args.timeline}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run the trace -> skeleton pipeline with metrics enabled."""
    from repro.obs import enabled_metrics, get_metrics, render_metrics

    cluster = paper_testbed()
    scenario = _resolve_scenario(args.scenario)
    program = get_program(args.benchmark, args.klass, args.nprocs, args.seed)
    # Honour a registry already enabled by --metrics-out; otherwise
    # enable a fresh one for the duration of this command.
    if get_metrics().enabled:
        registry = get_metrics()
        ctx = None
    else:
        ctx = enabled_metrics()
        registry = ctx.__enter__()
    try:
        print(f"profiling {program.name}: trace + skeleton ({args.target:g}s) "
              f"+ run under {scenario.name} ...")
        trace, _ = trace_program(program, cluster)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            bundle = build_skeleton(trace, target_seconds=args.target)
        run_program(bundle.program, cluster, scenario, seed=args.env_seed)
        print()
        print(render_metrics(registry))
    finally:
        if ctx is not None:
            ctx.__exit__(None, None, None)
    return 0


def _cmd_trace_validate(args: argparse.Namespace) -> int:
    """Validate a trace file; optionally salvage a corrupt one."""
    from repro.trace import read_trace_salvage, validate_trace

    corrupt = False
    if args.salvage:
        trace, report = read_trace_salvage(args.trace)
        print(report.describe())
        corrupt = not report.clean
        if args.output:
            write_trace(trace, args.output)
            print(f"salvaged trace written to {args.output}")
    else:
        trace = read_trace(args.trace)
    issues = validate_trace(trace)
    if issues:
        print(f"{args.trace}: INVALID ({len(issues)} issue(s))")
        for issue in issues:
            print(f"  - {issue}")
        return 1
    verdict = "OK (salvaged prefix)" if corrupt else "OK"
    print(
        f"{args.trace}: {verdict} — {trace.nranks} rank(s), "
        f"{trace.n_calls()} call(s)"
    )
    return 1 if corrupt else 0


def _load_fault_plan(args: argparse.Namespace):
    """A fault plan from ``--stock NAME`` or a plan JSON file."""
    from repro.faults import FaultPlan, stock_plans

    if args.stock is not None:
        plans = stock_plans(seed=args.plan_seed)
        if args.stock not in plans:
            raise ReproError(
                f"unknown stock plan {args.stock!r}; "
                f"choose from {sorted(plans)}"
            )
        return plans[args.stock]
    if args.plan is not None:
        with open(args.plan, "r", encoding="utf-8") as fh:
            return FaultPlan.from_json(fh.read())
    raise ReproError("provide a fault plan: --stock NAME or --plan FILE")


def _cmd_faults_render(args: argparse.Namespace) -> int:
    """Render a fault plan as text; optionally export it as JSON."""
    plan = _load_fault_plan(args)
    print(plan.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(plan.to_json() + "\n")
        print(f"plan written to {args.output}")
    return 0


def _cmd_faults_apply(args: argparse.Namespace) -> int:
    """Run a benchmark under a fault plan; report the slowdown."""
    from repro.cluster.contention import Scenario
    from repro.obs import TimelineRecorder

    plan = _load_fault_plan(args)
    cluster = paper_testbed()
    program = get_program(args.benchmark, args.klass, args.nprocs, args.seed)
    scenario = Scenario(
        name=plan.name or "faults",
        description="fault plan applied via the CLI",
        fault_plan=plan,
    )
    baseline = run_program(program, cluster, seed=args.env_seed)
    recorder = TimelineRecorder(
        program_name=program.name, scenario_name=scenario.name
    )
    result = run_program(
        program, cluster, scenario, hook=recorder, seed=args.env_seed
    )
    print(f"plan             : {plan.describe()}")
    print(f"fault-free run   : {format_duration(baseline.elapsed)}")
    print(f"faulted run      : {format_duration(result.elapsed)}")
    print(f"slowdown         : {result.elapsed / baseline.elapsed:.3f}x")
    print(f"events applied   : {len(recorder.faults)}")
    if args.timeline:
        recorder.write_chrome_trace(args.timeline)
        print(f"timeline written to {args.timeline} (Perfetto-loadable)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentRunner
    from repro.parallel.supervisor import SupervisorConfig

    config = ExperimentConfig(include_volatile=args.volatile)
    runner = ExperimentRunner(
        config,
        cache_dir=args.cache_dir,
        verbose=args.verbose,
        workers=args.workers,
        supervisor=SupervisorConfig(task_timeout=args.task_timeout),
        journal_durability=args.journal_durability,
    )
    results = runner.run(force=args.force, resume=args.resume)
    if args.campaign_timeline:
        n = runner.write_campaign_timeline(args.campaign_timeline)
        print(
            f"campaign timeline ({n} task span(s)) written to "
            f"{args.campaign_timeline} (Perfetto-loadable)",
            file=sys.stderr,
        )
    builders = {
        2: fig_mod.figure2_activity,
        3: fig_mod.figure3_error_by_benchmark,
        4: fig_mod.figure4_good_skeletons,
        5: fig_mod.figure5_error_by_size,
        6: fig_mod.figure6_error_by_scenario,
        7: fig_mod.figure7_baselines,
    }
    if args.figure is None:
        print(full_report(results))
    else:
        print(builders[args.figure](results).render())
    if args.diagnose:
        from repro.diagnose import (
            campaign_divergence,
            render_campaign_divergence,
        )

        reports = campaign_divergence(runner, results)
        print()
        print(render_campaign_divergence(reports))
        n = sum(len(per_bench) for per_bench in reports.values())
        print(
            f"{n} divergence report(s) persisted to the artifact store "
            f"('diagnosis' stage; see repro-skeleton store ls)",
            file=sys.stderr,
        )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Inspect / maintain the content-addressed artifact store."""
    import time as _time

    from repro.store import ArtifactStore

    store = ArtifactStore(args.cache_dir)
    action = args.store_command
    if action == "ls":
        from repro.store import canonical_json

        # Deterministic order: stage, newest first, digest as the
        # total-order tiebreak (equal timestamps are common on fast
        # writes). The registry's `list` verb and --json consumers
        # rely on it being stable across invocations.
        entries = sorted(
            store.entries(),
            key=lambda e: (e["stage"], -e["created"], e["digest"]),
        )
        if args.json:
            print(canonical_json(entries))
            return 0
        if not entries:
            print(f"store at {store.root} is empty")
            return 0
        now = _time.time()
        by_stage: dict[str, int] = {}
        print(f"{'STAGE':<10} {'DIGEST':<34} {'AGE':>10} {'BYTES':>10}")
        for e in entries:
            flag = "  CORRUPT" if e["corrupt"] else ""
            print(
                f"{e['stage']:<10} {e['digest']:<34} "
                f"{format_duration(max(0.0, now - e['created'])):>10} "
                f"{e['bytes']:>10}{flag}"
            )
            by_stage[e["stage"]] = by_stage.get(e["stage"], 0) + 1
        summary = ", ".join(f"{n} {s}" for s, n in sorted(by_stage.items()))
        print(f"\n{len(entries)} artifact(s) ({summary}), "
              f"{store.total_bytes()} bytes at {store.root}")
        return 0
    if action == "verify":
        issues = store.verify()
        if not issues:
            print(f"store at {store.root}: OK "
                  f"({len(store.entries())} artifact(s) verified)")
            return 0
        print(f"store at {store.root}: {len(issues)} issue(s)")
        for issue in issues:
            print(f"  - {issue}")
        return 1
    if action == "gc":
        if args.max_age_days is None and args.max_mbytes is None:
            raise ReproError("gc needs --max-age-days and/or --max-mbytes")
        evicted = store.gc(
            max_age_seconds=(
                None if args.max_age_days is None
                else args.max_age_days * 86400.0
            ),
            max_bytes=(
                None if args.max_mbytes is None
                else int(args.max_mbytes * 1024 * 1024)
            ),
        )
        print(f"evicted {len(evicted)} artifact(s); "
              f"store now {store.total_bytes()} bytes")
        return 0
    if action == "prune":
        removed = store.prune()
        print(f"removed {removed['objects']} corrupt object(s), "
              f"{removed['blobs']} orphan blob(s), and "
              f"{removed['tmp']} stale temp file(s)")
        return 0
    raise ReproError(f"unknown store action {action!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the online prediction service (see docs/SERVING.md)."""
    from repro.obs import MetricsRegistry, get_metrics, set_metrics
    from repro.obs.tracing import Tracer, set_tracer
    from repro.parallel.supervisor import SupervisorConfig
    from repro.serve import PredictionServer, PredictionService, WorkerPool

    # metricz must answer with real numbers even without --metrics-out,
    # and tracez/slowz likewise need a live tracer: the flight recorder
    # is always on in the daemon (bounded ring, O(1) per span).
    if not get_metrics().enabled:
        set_metrics(MetricsRegistry(enabled=True))
    if not args.no_trace:
        # Install before the pool forks so workers inherit the tracer.
        set_tracer(Tracer(
            enabled=True,
            capacity=args.trace_ring,
            dump_path=args.flight_recorder,
        ))
    pool = None
    if args.workers > 0:
        pool = WorkerPool(
            cache_dir=args.cache_dir,
            workers=args.workers,
            supervisor=SupervisorConfig(task_timeout=args.task_timeout),
        )
    service = PredictionService(cache_dir=args.cache_dir, pool=pool)
    server = PredictionServer(
        service,
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        max_concurrency=args.concurrency,
        default_deadline=args.deadline,
        drain_grace=args.drain_grace,
        access_log=args.access_log,
    )
    print(f"store: {service.store.root}", file=sys.stderr, flush=True)
    server.run()
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    """Build (or load) a workload's skeleton and register an alias."""
    from repro.serve import PredictionService

    service = PredictionService(cache_dir=args.cache_dir)
    reply = service.handle("publish", {
        "alias": args.alias,
        "bench": args.benchmark,
        "klass": args.klass,
        "nprocs": args.nprocs,
        "workload_seed": args.seed,
        "target": args.target,
    })
    if not reply["ok"]:
        print(f"error: {reply['error']['message']}", file=sys.stderr)
        return 1
    entry = reply["result"]
    print(f"published {entry['alias']} "
          f"({entry['workload']['bench']}.{entry['workload']['klass']} "
          f"x{entry['workload']['nprocs']}, target {entry['target']:g}s)")
    print(f"  trace    {entry['trace_digest']}")
    print(f"  skeleton {entry['skeleton_digest']}")
    return 0


def _cmd_call(args: argparse.Namespace) -> int:
    """One client request against a running service; prints the reply
    as canonical JSON and exits non-zero on a non-ok reply."""
    import json

    from repro.serve import ServiceClient
    from repro.store import canonical_json

    params = json.loads(args.params) if args.params else {}
    if not isinstance(params, dict):
        raise ReproError("--params must be a JSON object")
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    trace_ctx = None
    if args.trace:
        from repro.obs.tracing import new_root_context

        trace_ctx = new_root_context().to_dict()
    reply = client.call(
        args.verb, params,
        deadline_ms=args.deadline_ms,
        trace=trace_ctx,
    )
    # The span tree goes to stderr and the trace payload is stripped,
    # so stdout stays byte-identical with or without --trace.
    trace_reply = reply.pop("trace", None)
    print(canonical_json(reply))
    if args.trace:
        from repro.obs.tracing import render_span_tree

        spans = (trace_reply or {}).get("spans") or []
        print(render_span_tree(spans), file=sys.stderr)
    return 0 if reply.get("ok") else 1


def _cmd_trace_dump(args: argparse.Namespace) -> int:
    """Inspect a flight-recorder dump file (span trees, slowest
    requests); optionally convert it to a Perfetto-loadable trace."""
    import json

    from repro.obs.tracing import (
        FlightRecorder,
        render_span_tree,
        spans_to_chrome_trace,
    )

    with open(args.dump, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    spans = [s for s in data.get("spans", []) if isinstance(s, dict)]
    if args.trace_id:
        spans = [s for s in spans if s.get("trace_id") == args.trace_id]
    print(f"flight recorder dump: {args.dump}")
    print(f"  reason   : {data.get('reason', '?')}")
    print(f"  spans    : {len(spans)} retained, "
          f"{data.get('dropped_spans', 0)} dropped "
          f"(ring capacity {data.get('capacity', '?')})")
    events = data.get("events", [])
    if events:
        print(f"  events   : {len(events)} "
              f"(last: {events[-1].get('name', '?')})")
    print()
    print(render_span_tree(spans))
    if args.slowest:
        recorder = FlightRecorder(capacity=max(1, len(spans)))
        recorder.record_remote(spans)
        print()
        print(f"slowest {args.slowest} request(s):")
        for entry in recorder.slowest(args.slowest):
            root = entry["span"]
            print(f"  {root['name']} {entry['seconds'] * 1e3:.1f}ms "
                  f"[{root.get('status', '?')}] "
                  f"trace={root.get('trace_id', '?')}")
            for name, stage in entry["stages"].items():
                print(f"    {name}: {stage['seconds'] * 1e3:.1f}ms "
                      f"x{stage['count']}")
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(spans_to_chrome_trace(spans), fh)
            fh.write("\n")
        print(f"chrome trace written to {args.chrome}", file=sys.stderr)
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Scan-and-repair the artifact store and campaign journals."""
    import json

    from repro.store import ArtifactStore, fsck

    store = ArtifactStore(args.cache_dir)
    report = fsck(
        store,
        repair=not args.dry_run,
        max_cache_bytes=args.max_cache_bytes,
    )
    print(report.render())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"fsck report written to {args.report}", file=sys.stderr)
    # Dry run: issues found means a non-zero exit so scripts can gate
    # on it; after a repair the tree is healthy again, so exit 0.
    if args.dry_run and not report.clean:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-skeleton",
        description="Automatic construction and evaluation of performance "
        "skeletons (IPPS 2005 reproduction)",
    )
    from repro import __version__

    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="enable the metrics registry for this invocation and write "
        "its JSON snapshot to PATH on exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace", help="trace a benchmark, write a trace file")
    _add_common_bench_args(p)
    p.add_argument("-o", "--output", default="app.trace")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("skeleton", help="build a skeleton from a trace file")
    p.add_argument("trace")
    p.add_argument("--target", type=float, default=5.0,
                   help="desired skeleton execution time (s)")
    p.set_defaults(func=_cmd_skeleton)

    p = sub.add_parser(
        "signature", help="compress a trace into a signature file / inspect one"
    )
    p.add_argument("trace", help="a .trace file (or a .sig file to inspect)")
    p.add_argument("--ratio", type=float, default=2.0,
                   help="target compression ratio Q")
    p.add_argument("-o", "--output", default=None, help="signature output path")
    p.add_argument("--inspect", action="store_true",
                   help="treat the input as an existing signature file")
    p.add_argument("--show-ranks", type=int, default=4)
    p.set_defaults(func=_cmd_signature)

    p = sub.add_parser("stats", help="descriptive statistics of a trace")
    p.add_argument("trace")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("codegen", help="emit the synthetic C/MPI skeleton")
    p.add_argument("trace")
    p.add_argument("--target", type=float, default=5.0)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_codegen)

    p = sub.add_parser("predict", help="predict under a sharing scenario")
    _add_common_bench_args(p)
    p.add_argument("--target", type=float, default=5.0)
    p.add_argument("--scenario", default="cpu-one-node")
    p.add_argument("--env-seed", type=int, default=0,
                   help="environment randomness seed")
    p.add_argument("--verify", action="store_true",
                   help="also measure the application and report the error")
    p.add_argument("--json", action="store_true",
                   help="print the prediction payload as canonical JSON "
                   "(byte-identical to the served result)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="artifact store root (default: $REPRO_CACHE_DIR "
                   "or <project root>/.repro_cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the artifact store (recompute everything)")
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser(
        "validate", help="skeleton-vs-reality validation for one benchmark"
    )
    _add_common_bench_args(p)
    p.add_argument("--targets", type=float, nargs="+", default=[5.0, 1.0],
                   help="skeleton sizes to validate (seconds)")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "trace-validate",
        help="validate a trace file ('trace validate' works too)",
    )
    p.add_argument("trace", help="trace file to check")
    p.add_argument("--salvage", action="store_true",
                   help="recover the valid prefix of a corrupt file")
    p.add_argument("-o", "--output", default=None,
                   help="with --salvage: write the recovered trace here")
    p.set_defaults(func=_cmd_trace_validate)

    p = sub.add_parser("faults", help="render or apply fault plans")
    fsub = p.add_subparsers(dest="faults_command", required=True)
    for name, helptext, func in (
        ("render", "print a fault plan (optionally export JSON)",
         _cmd_faults_render),
        ("apply", "run a benchmark under a fault plan", _cmd_faults_apply),
    ):
        fp = fsub.add_parser(name, help=helptext)
        if name == "apply":
            _add_common_bench_args(fp)
            fp.add_argument("--env-seed", type=int, default=0,
                            help="environment randomness seed")
            fp.add_argument("--timeline", default=None, metavar="PATH",
                            help="also write a Perfetto timeline JSON")
        fp.add_argument("--stock", default=None,
                        help="a stock plan by name (see repro.faults)")
        fp.add_argument("--plan", default=None, metavar="FILE",
                        help="a fault-plan JSON file")
        fp.add_argument("--plan-seed", type=int, default=0,
                        help="seed for stock plan generation")
        if name == "render":
            fp.add_argument("-o", "--output", default=None,
                            help="export the plan as JSON")
        fp.set_defaults(func=func)

    p = sub.add_parser("experiment", help="run the evaluation campaign")
    p.add_argument("--figure", type=int, choices=range(2, 8), default=None)
    p.add_argument("--force", action="store_true",
                   help="ignore cached results")
    p.add_argument("--resume", action="store_true",
                   help="resume an interrupted campaign from its journal")
    p.add_argument("--volatile", action="store_true",
                   help="also score skeletons under the volatile "
                   "fault-plan scenarios")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="run the campaign on N worker processes "
                   "(results are byte-identical to serial)")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="with --workers: hard wall-clock cap per task; "
                   "a worker past it is presumed hung, cancelled, and "
                   "its task re-queued (an adaptive p95-based soft "
                   "deadline applies either way)")
    p.add_argument("--journal-durability", choices=("fsync", "flush"),
                   default="fsync",
                   help="fsync every journal line (default, survives "
                   "power loss) or only flush to the OS (faster; "
                   "survives process crashes)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="artifact store root (default: $REPRO_CACHE_DIR "
                   "or <project root>/.repro_cache)")
    p.add_argument("--campaign-timeline", default=None, metavar="PATH",
                   help="with --workers: write per-worker task spans as "
                   "a Perfetto-loadable Chrome trace")
    p.add_argument("--diagnose", action="store_true",
                   help="also emit a per-scenario divergence report "
                   "(prediction-error decomposition; persisted in the "
                   "artifact store)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="structured per-run progress lines with ETA")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "store", help="inspect / maintain the artifact store"
    )
    ssub = p.add_subparsers(dest="store_command", required=True)
    for name, helptext in (
        ("ls", "list stored artifacts by stage"),
        ("verify", "integrity-check every artifact"),
        ("gc", "evict artifacts by age / size budget"),
        ("prune", "remove corrupt objects and orphan blobs"),
    ):
        sp = ssub.add_parser(name, help=helptext)
        sp.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="store root (default: $REPRO_CACHE_DIR or "
                       "<project root>/.repro_cache)")
        if name == "ls":
            sp.add_argument("--json", action="store_true",
                            help="print the entry index as canonical JSON")
        if name == "gc":
            sp.add_argument("--max-age-days", type=float, default=None,
                            help="evict artifacts older than this many days")
            sp.add_argument("--max-mbytes", type=float, default=None,
                            help="shrink the store to this many MiB "
                            "(oldest first)")
        sp.set_defaults(func=_cmd_store)

    p = sub.add_parser(
        "doctor",
        help="scan-and-repair the artifact store and campaign journals",
    )
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="store root (default: $REPRO_CACHE_DIR or "
                   "<project root>/.repro_cache)")
    p.add_argument("--max-cache-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="evict least-recently-used artifacts until the "
                   "store fits this byte budget")
    p.add_argument("--dry-run", action="store_true",
                   help="report issues without repairing; exit 1 if any "
                   "are found")
    p.add_argument("-o", "--report", default=None, metavar="PATH",
                   help="also write the FsckReport as JSON")
    p.set_defaults(func=_cmd_doctor)

    p = sub.add_parser(
        "serve",
        help="run the online prediction service (JSON-over-TCP daemon)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7077,
                   help="TCP port (0 picks a free one; the ready line "
                   "reports the choice)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="cold predictions run on N supervised worker "
                   "processes (0: compute inline, no isolation)")
    p.add_argument("--max-pending", type=int, default=16,
                   help="bounded admission: heavy requests beyond this "
                   "are refused with an explicit 503 overload reply")
    p.add_argument("--concurrency", type=int, default=2,
                   help="admitted requests executing at once")
    p.add_argument("--deadline", type=float, default=120.0,
                   metavar="SECONDS",
                   help="default per-request deadline (clients may "
                   "lower it per call via deadline_ms)")
    p.add_argument("--drain-grace", type=float, default=10.0,
                   metavar="SECONDS",
                   help="SIGTERM drain: wait this long for in-flight "
                   "requests before exiting")
    p.add_argument("--task-timeout", type=float, default=120.0,
                   metavar="SECONDS",
                   help="hard wall-clock cap per worker prediction; a "
                   "worker past it is presumed hung, cancelled, and "
                   "respawned")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="artifact store root (default: $REPRO_CACHE_DIR "
                   "or <project root>/.repro_cache)")
    p.add_argument("--flight-recorder", default=None, metavar="PATH",
                   help="dump the flight recorder (recent spans/events) "
                   "to PATH on error replies, worker trouble, and drain")
    p.add_argument("--trace-ring", type=int, default=2048, metavar="N",
                   help="flight-recorder capacity: completed spans kept "
                   "in the in-memory ring")
    p.add_argument("--access-log", action="store_true",
                   help="log one structured JSON line per request to "
                   "stderr (verb, code, latency, trace id)")
    p.add_argument("--no-trace", action="store_true",
                   help="disable request tracing and the flight recorder")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "publish",
        help="build a workload's skeleton and register a named alias",
    )
    p.add_argument("alias",
                   help="registry alias: NAME (auto-versioned) or NAME@vN")
    _add_common_bench_args(p)
    p.add_argument("--target", type=float, default=5.0,
                   help="skeleton target size (seconds)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="artifact store root (default: $REPRO_CACHE_DIR "
                   "or <project root>/.repro_cache)")
    p.set_defaults(func=_cmd_publish)

    p = sub.add_parser(
        "call",
        help="send one request to a running service, print the reply",
    )
    p.add_argument("verb",
                   help="protocol verb: ping, healthz, metricz, tracez, "
                   "slowz, resolve, list, publish, predict")
    p.add_argument("--params", default=None, metavar="JSON",
                   help="request parameters as a JSON object")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7077)
    p.add_argument("--timeout", type=float, default=60.0,
                   help="client socket timeout (seconds)")
    p.add_argument("--deadline-ms", type=int, default=None,
                   help="server-side deadline for this request")
    p.add_argument("--trace", action="store_true",
                   help="send a trace context with the request and "
                   "print the server's span tree to stderr")
    p.set_defaults(func=_cmd_call)

    p = sub.add_parser(
        "trace-dump",
        help="inspect a flight-recorder dump (span trees, slowest "
        "requests, Perfetto export)",
    )
    p.add_argument("dump", help="flight-recorder JSON dump file")
    p.add_argument("--trace-id", default=None,
                   help="show only this trace's spans")
    p.add_argument("--slowest", type=int, default=0, metavar="K",
                   help="also list the K slowest requests with "
                   "per-stage breakdown")
    p.add_argument("--chrome", default=None, metavar="PATH",
                   help="write the spans as a Perfetto-loadable Chrome "
                   "trace")
    p.set_defaults(func=_cmd_trace_dump)

    p = sub.add_parser(
        "timeline",
        help="record a run's per-rank timeline as Perfetto-loadable JSON",
    )
    _add_common_bench_args(p)
    p.add_argument("--scenario", default="dedicated",
                   help="sharing scenario (default: dedicated)")
    p.add_argument("--env-seed", type=int, default=0,
                   help="environment randomness seed")
    p.add_argument("--samples", type=int, default=120,
                   help="target number of utilization samples (0 disables)")
    p.add_argument("-o", "--output", default="timeline.json")
    p.set_defaults(func=_cmd_timeline)

    p = sub.add_parser(
        "diagnose",
        help="time-resolved diagnosis: breakdown, wait states, critical "
        "path, and the skeleton's divergence report",
    )
    _add_common_bench_args(p)
    p.add_argument("--scenario", default="cpu-one-node",
                   help="sharing scenario (default: cpu-one-node)")
    p.add_argument("--target", type=float, default=1.0,
                   help="skeleton target size for the divergence report "
                   "(seconds)")
    p.add_argument("--env-seed", type=int, default=0,
                   help="environment randomness seed")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="write the full diagnosis report as JSON")
    p.add_argument("--timeline", default=None, metavar="PATH",
                   help="write a Perfetto timeline with wait-state tracks")
    p.set_defaults(func=_cmd_diagnose)

    p = sub.add_parser(
        "profile",
        help="run trace -> skeleton -> probe with the metrics registry on",
    )
    _add_common_bench_args(p)
    p.add_argument("--scenario", default="cpu-one-node")
    p.add_argument("--target", type=float, default=5.0,
                   help="skeleton target size (seconds)")
    p.add_argument("--env-seed", type=int, default=0,
                   help="environment randomness seed")
    p.set_defaults(func=_cmd_profile)

    return parser


def _normalize_argv(argv: Sequence[str]) -> list[str]:
    """Map the natural ``trace validate FILE`` spelling onto the
    ``trace-validate`` subcommand (``trace`` already takes a benchmark
    name as its positional, so argparse cannot nest it)."""
    argv = list(argv)
    i = 0
    while i < len(argv):
        tok = argv[i]
        if tok == "--metrics-out":
            i += 2
            continue
        if tok.startswith("-"):
            i += 1
            continue
        if tok == "trace" and i + 1 < len(argv) and argv[i + 1] == "validate":
            argv[i : i + 2] = ["trace-validate"]
        break
    return argv


def _persist_metrics_snapshot(args: argparse.Namespace, registry) -> None:
    """Also persist the ``--metrics-out`` snapshot into the artifact
    store (stage ``metrics``, keyed by the invoked command), so
    ``store ls`` tracks instrumentation across campaign stages."""
    from repro.store import ArtifactStore

    try:
        store = ArtifactStore(getattr(args, "cache_dir", None))
        key = store.key("metrics", {"command": args.command})
        store.put(key, {"command": args.command, "metrics": registry.snapshot()})
        print(
            f"metrics snapshot persisted to the artifact store "
            f"({key.digest})",
            file=sys.stderr,
        )
    except (ReproError, OSError) as exc:
        print(f"warning: metrics snapshot not persisted: {exc}",
              file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(
        _normalize_argv(sys.argv[1:] if argv is None else argv)
    )
    warnings.simplefilter("default")
    from repro.obs import MetricsRegistry, set_metrics

    registry = None
    if args.metrics_out:
        registry = MetricsRegistry(enabled=True)
        set_metrics(registry)
    try:
        rc = args.func(args)
        if registry is not None:
            registry.write(args.metrics_out)
            print(f"metrics written to {args.metrics_out}", file=sys.stderr)
            _persist_metrics_snapshot(args, registry)
        return rc
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if registry is not None:
            set_metrics(None)


if __name__ == "__main__":
    raise SystemExit(main())
