"""repro — automatic construction and evaluation of performance
skeletons.

A full reproduction of Sodhi & Subhlok, "Automatic Construction and
Evaluation of Performance Skeletons" (IPPS 2005): trace a message-
passing application, compress the trace into an execution signature
(similarity-threshold clustering + loop detection), scale it down by a
factor K, and emit a short-running *performance skeleton* whose
execution time under any resource-sharing scenario predicts the
application's.

The physical testbed is replaced by :mod:`repro.sim`, a deterministic
fluid-flow cluster simulator; see DESIGN.md for the substitution
argument.

Quick start::

    from repro import (
        paper_testbed, get_program, trace_program, build_skeleton,
        SkeletonPredictor, cpu_one_node, run_program,
    )

    cluster = paper_testbed()
    app = get_program("cg", "B", 4)
    trace, dedicated = trace_program(app, cluster)
    bundle = build_skeleton(trace, target_seconds=5.0)

    predictor = SkeletonPredictor(bundle.program, dedicated.elapsed, cluster)
    scenario = cpu_one_node()
    prediction = predictor.predict(scenario)
    actual = run_program(app, cluster, scenario).elapsed
    print(prediction.predicted_seconds, actual)
"""

from repro.errors import (
    DeadlockError,
    ExperimentError,
    ProgramError,
    ReproError,
    SignatureError,
    SimulationError,
    SkeletonError,
    SkeletonQualityWarning,
    TopologyError,
    TraceError,
    WorkloadError,
)
from repro.cluster import (
    Cluster,
    DEDICATED,
    NetworkSpec,
    NodeSpec,
    Scenario,
    combined_cpu_and_link,
    cpu_all_nodes,
    cpu_one_node,
    link_all,
    link_one,
    paper_scenarios,
    paper_testbed,
)
from repro.sim import Program, run_program
from repro.trace import Tracer, trace_program, read_trace, write_trace
from repro.core import (
    SkeletonBundle,
    build_skeleton,
    compress_trace,
    generate_c_source,
    scale_signature,
    shortest_good_skeleton,
    skeleton_program,
)
from repro.predict import ClassSPredictor, SkeletonPredictor, select_nodes
from repro.workloads import available_benchmarks, get_program
from repro.experiments import ExperimentConfig, run_experiments

def _detect_version() -> str:
    """Package version with ``pyproject.toml`` as the single source.

    Installed environments read the distribution metadata (which
    setuptools copied from ``pyproject.toml``); ``PYTHONPATH=src``
    checkouts fall back to parsing the checkout's ``pyproject.toml``
    directly (guarded by its ``name`` so a stray file is never
    trusted).
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        pass
    import re
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return "0.0.0+unknown"
    if re.search(r'^name\s*=\s*"repro"', text, re.M):
        match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.M)
        if match:
            return match.group(1)
    return "0.0.0+unknown"


__version__ = _detect_version()

__all__ = [
    "__version__",
    # errors
    "ReproError", "SimulationError", "DeadlockError", "ProgramError",
    "TopologyError", "TraceError", "SignatureError", "SkeletonError",
    "SkeletonQualityWarning", "ExperimentError", "WorkloadError",
    # cluster
    "Cluster", "NodeSpec", "NetworkSpec", "Scenario", "DEDICATED",
    "paper_testbed", "paper_scenarios", "cpu_one_node", "cpu_all_nodes",
    "link_one", "link_all", "combined_cpu_and_link",
    # sim
    "Program", "run_program",
    # trace
    "Tracer", "trace_program", "read_trace", "write_trace",
    # core
    "build_skeleton", "SkeletonBundle", "compress_trace", "scale_signature",
    "skeleton_program", "shortest_good_skeleton", "generate_c_source",
    # predict
    "SkeletonPredictor", "ClassSPredictor", "select_nodes",
    # workloads
    "get_program", "available_benchmarks",
    # experiments
    "ExperimentConfig", "run_experiments",
]
