#!/usr/bin/env python
"""Why these skeletons do NOT transfer across memory architectures —
reproducing the paper's §2/§5 caveat with the memory-model extension.

The skeletons replay *time-calibrated* compute phases. Within one
machine that is exactly right; across machines with different memory
hierarchies it breaks, because the application's effective speed
depends on how its working set fits the cache while the skeleton's
replayed busy-time does not. The paper: "Reproduction of memory
accesses ... is critical for performance estimation across different
processor and memory architectures."

We model two machines with equal nominal CPUs but different caches and
show: contention prediction on the *same* machine works; porting the
skeleton's timing to the other machine misestimates the application.

Run:  python examples/cross_architecture_limits.py
"""

from repro.ext import MemoryHierarchy, effective_speed

#: The application's per-rank working set (Class B CG-like): 40 MB.
WORKING_SET = 40 * 1024 * 1024
#: The skeleton busy-spins in registers/L1: a tiny working set.
SKELETON_SET = 64 * 1024

MACHINE_A = MemoryHierarchy(cache_bytes=512 * 1024, miss_speed=0.35)   # 2005 Xeon
MACHINE_B = MemoryHierarchy(cache_bytes=8 * 1024 * 1024, miss_speed=0.35)

APP_COMPUTE_REFERENCE = 100.0  # seconds of compute at full speed


def runtime(machine: MemoryHierarchy, working_set: float, compute: float) -> float:
    return compute / effective_speed(machine, working_set)


def main() -> None:
    app_a = runtime(MACHINE_A, WORKING_SET, APP_COMPUTE_REFERENCE)
    app_b = runtime(MACHINE_B, WORKING_SET, APP_COMPUTE_REFERENCE)
    print("Application compute time:")
    print(f"  machine A (512 KB cache): {app_a:7.1f} s")
    print(f"  machine B (  8 MB cache): {app_b:7.1f} s")
    print(f"  B is {app_a / app_b:.2f}x faster thanks to its cache\n")

    # A K=100 skeleton built on machine A replays app_a/100 of busy
    # time; its own working set always fits cache, so it runs the SAME
    # on both machines.
    K = 100.0
    skel_a = runtime(MACHINE_A, SKELETON_SET, app_a / K)
    skel_b = runtime(MACHINE_B, SKELETON_SET, app_a / K)
    print(f"K={K:.0f} skeleton (built on A) execution time:")
    print(f"  on machine A: {skel_a:6.3f} s")
    print(f"  on machine B: {skel_b:6.3f} s   <- identical: blind to cache\n")

    ratio = app_a / skel_a  # measured scaling ratio on A
    predicted_b = skel_b * ratio
    err = abs(predicted_b - app_b) / app_b * 100
    print("Cross-architecture prediction for machine B:")
    print(f"  predicted: {predicted_b:7.1f} s")
    print(f"  actual   : {app_b:7.1f} s")
    print(f"  error    : {err:5.1f}%   <- the §5 limitation, quantified")
    print(
        "\nWithin-machine contention prediction is unaffected (CPU shares "
        "scale busy time and application compute identically); replaying "
        "memory access patterns — the paper's companion work [30] — is "
        "what cross-architecture prediction would require."
    )


if __name__ == "__main__":
    main()
