#!/usr/bin/env python
"""Generate the synthetic C/MPI skeleton program for a benchmark.

The paper's framework emits a C program whose loops, MPI calls, and
calibrated busy-compute phases replay the scaled execution signature
(§3.3 step 4, Figure 1). This example builds the Class W IS skeleton
and writes `is_skeleton.c` — a complete, compilable MPI program you
could run on a real cluster with `mpicc is_skeleton.c && mpiexec -n 4
a.out`.

Run:  python examples/skeleton_codegen.py [output.c]
"""

import sys

from repro import build_skeleton, generate_c_source, get_program, paper_testbed, trace_program


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "is_skeleton.c"
    cluster = paper_testbed()
    app = get_program("is", "W", nprocs=4)

    print(f"Tracing {app.name} ...")
    trace, dedicated = trace_program(app, cluster)

    print(f"Building skeleton (K = 5) ...")
    bundle = build_skeleton(trace, scaling_factor=5.0, warn=False)

    source = generate_c_source(bundle.scaled, name=app.name)
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(source)

    lines = source.splitlines()
    print(f"Wrote {out_path}: {len(lines)} lines of C")
    print("\n--- preview (first 40 lines) " + "-" * 30)
    print("\n".join(lines[:40]))
    print("...")
    # Show the heart of the program: the first rank's loop structure.
    start = next(i for i, l in enumerate(lines) if "if (rank == 0)" in l)
    print("\n--- rank 0 body (excerpt) " + "-" * 34)
    print("\n".join(lines[start : start + 14]))
    print("...")


if __name__ == "__main__":
    main()
