#!/usr/bin/env python
"""Resource selection with performance skeletons — the paper's
motivating grid use case (§1).

A job needs 4 of the 8 cluster nodes. Some nodes carry competing load
and one node's link is saturated, but *no monitoring infrastructure
tells us which*. Instead of predicting from system status, we run the
application's skeleton on each candidate node set for a few hundred
milliseconds and pick the fastest — the skeleton feels the actual
contention.

Run:  python examples/resource_selection.py
"""

from repro import (
    Cluster,
    Scenario,
    build_skeleton,
    get_program,
    run_program,
    select_nodes,
    trace_program,
)
from repro.cluster.contention import LoadModel, TrafficModel
from repro.util.timebase import format_duration


def main() -> None:
    cluster = Cluster.uniform(8, ncpus=2)
    app = get_program("mg", "W", nprocs=4)

    # The cluster's current (hidden) state: nodes 0-2 run competing
    # jobs, node 5's link is saturated by bulk traffic.
    state = Scenario(
        name="busy-cluster",
        competing={0: 2, 1: 2, 2: 1},
        nic_caps={5: 2.5e6},
        load_model=LoadModel(),
        traffic_model=TrafficModel(),
    )

    print("Building the application skeleton (one-time cost) ...")
    trace, dedicated = trace_program(app, cluster)
    bundle = build_skeleton(trace, target_seconds=dedicated.elapsed / 8.0,
                            warn=False)
    print(f"  application dedicated: {format_duration(dedicated.elapsed)}; "
          f"skeleton ~{format_duration(bundle.target_seconds)}")

    candidates = [
        (0, 1, 2, 3),   # the loaded corner
        (2, 3, 4, 5),   # mixed: one loaded node + the saturated link
        (4, 5, 6, 7),   # includes the saturated link
        (3, 4, 6, 7),   # the quiet nodes
    ]
    labels = ["nodes 0-3", "nodes 2-5", "nodes 4-7", "nodes 3,4,6,7"]

    print("\nProbing candidate node sets with the skeleton:")
    selection = select_nodes(
        bundle.program, cluster, candidates, scenario=state, labels=labels
    )
    for cand in selection.ranking:
        print(f"  {cand.label:14s} -> {format_duration(cand.skeleton_seconds)}")
    print(f"\nSelected: {selection.best.label}")

    print("\nGround truth (full application on each candidate):")
    truth = []
    for label, placement in zip(labels, candidates):
        t = run_program(
            app, cluster, state, placement=list(placement), seed=42
        ).elapsed
        truth.append((t, label))
        print(f"  {label:14s} -> {format_duration(t)}")
    best_actual = min(truth)[1]
    print(f"\nBest by measurement: {best_actual}  "
          f"({'MATCH' if best_actual == selection.best.label else 'MISMATCH'})")


if __name__ == "__main__":
    main()
