#!/usr/bin/env python
"""A miniature grid scheduler shoot-out — the paper's thesis in action.

The paper's §1 argument: predicting application performance from
*system status* (load averages, unused bandwidth) is inherently
error-prone, while briefly *executing the application's skeleton* on
candidate nodes measures exactly what matters. This example makes the
two strategies compete on an 8-node cluster whose sharing state the
schedulers cannot see directly:

* **status-based**: picks the node set with the lowest competing
  process count (what a load-average monitor would do) — it cannot
  know how *this* application reacts to the throttled link;
* **skeleton-based**: times the application's skeleton on each
  candidate set and picks the fastest.

Three applications with very different sensitivities (compute-bound
EP-like, bandwidth-bound IS-like, latency-sensitive LU-like) arrive;
whoever schedules them better wins wall-clock.

Run:  python examples/grid_scheduler.py
"""

from repro import Cluster, Scenario, build_skeleton, run_program, trace_program
from repro.cluster.contention import LoadModel, TrafficModel
from repro.predict import select_nodes
from repro.util.timebase import format_duration
from repro.workloads import get_program

CANDIDATES = [(0, 1, 2, 3), (2, 3, 4, 5), (4, 5, 6, 7)]
LABELS = ["nodes 0-3", "nodes 2-5", "nodes 4-7"]

#: Hidden cluster state: light CPU load on nodes 4-7, but node 6's
#: link is saturated; nodes 0-3 carry moderate CPU load with clean
#: links.
STATE = Scenario(
    name="afternoon",
    competing={0: 1, 1: 1, 2: 1, 3: 1, 4: 0, 5: 0, 6: 0, 7: 0},
    nic_caps={6: 2.0e6},
    load_model=LoadModel(),
    traffic_model=TrafficModel(),
)

#: What a load monitor sees: competing process counts only.
VISIBLE_LOAD = {0: 1, 1: 1, 2: 1, 3: 1, 4: 0, 5: 0, 6: 0, 7: 0}


def status_based_choice() -> int:
    """Pick the candidate with the least total competing load."""
    loads = [
        sum(VISIBLE_LOAD.get(n, 0) for n in cand) for cand in CANDIDATES
    ]
    return loads.index(min(loads))


def main() -> None:
    cluster = Cluster.uniform(8, ncpus=2)
    jobs = [("ep", "W"), ("is", "A"), ("lu", "W")]

    total = {"status": 0.0, "skeleton": 0.0, "oracle": 0.0}
    print(f"{'job':>8} {'status picks':>14} {'skeleton picks':>15} "
          f"{'status time':>12} {'skeleton time':>14} {'oracle':>10}")

    for bench, klass in jobs:
        app = get_program(bench, klass, nprocs=4)
        trace, ded = trace_program(app, cluster)
        bundle = build_skeleton(
            trace, target_seconds=max(0.05, ded.elapsed / 20), warn=False
        )

        # Status-based: least-loaded nodes, blind to the link.
        status_idx = status_based_choice()

        # Skeleton-based: measure.
        selection = select_nodes(
            bundle.program, cluster, CANDIDATES, scenario=STATE,
            labels=LABELS,
        )
        skel_idx = LABELS.index(selection.best.label)

        # Ground truth for every candidate.
        times = [
            run_program(app, cluster, STATE, placement=list(cand),
                        seed=17).elapsed
            for cand in CANDIDATES
        ]
        oracle = min(times)
        total["status"] += times[status_idx]
        total["skeleton"] += times[skel_idx]
        total["oracle"] += oracle
        print(f"{bench + '.' + klass:>8} {LABELS[status_idx]:>14} "
              f"{LABELS[skel_idx]:>15} "
              f"{format_duration(times[status_idx]):>12} "
              f"{format_duration(times[skel_idx]):>14} "
              f"{format_duration(oracle):>10}")

    print(
        f"\ntotals: status-based {format_duration(total['status'])}, "
        f"skeleton-based {format_duration(total['skeleton'])}, "
        f"oracle {format_duration(total['oracle'])}"
    )
    ratio = total["status"] / total["skeleton"]
    print(f"skeleton-based scheduling is {ratio:.2f}x faster overall "
          f"({total['skeleton'] / total['oracle']:.2f}x of oracle)")


if __name__ == "__main__":
    main()
