#!/usr/bin/env python
"""Validate a skeleton before trusting it — the adopter's checklist.

Before using a skeleton for scheduling decisions you want to know:
(1) does it *behave* like the application (the paper's Figure 2
check, plus call-mix/traffic similarity), and (2) does it *predict*
across the sharing conditions you care about, at the sizes you can
afford? `validate_skeletons` + `skeleton_similarity` answer both in a
few seconds.

Run:  python examples/validate_before_deploy.py
"""

from repro import build_skeleton, paper_testbed, trace_program
from repro.predict import validate_skeletons
from repro.trace import skeleton_similarity
from repro.workloads import get_program


def main() -> None:
    cluster = paper_testbed()
    app = get_program("lu", "W", nprocs=4)

    # --- behavioural similarity (Figure 2 and beyond) -----------------
    trace, dedicated = trace_program(app, cluster)
    bundle = build_skeleton(trace, target_seconds=dedicated.elapsed / 10,
                            warn=False)
    skel_trace, _ = trace_program(bundle.program, cluster)
    sim = skeleton_similarity(trace, skel_trace)
    print("behavioural similarity (0 = identical):")
    for name, value in sim.items():
        verdict = "ok" if value < 0.25 else "SUSPECT"
        print(f"  {name:16s} {value:.3f}   {verdict}")

    # --- prediction validation across scenarios ----------------------
    print("\nprediction validation (5 scenarios x 2 sizes):")
    report = validate_skeletons(
        app, cluster,
        targets=(dedicated.elapsed / 10, dedicated.elapsed / 50),
    )
    print(report.render())
    print(f"\naverage error {report.average_error():.1f}%, worst "
          f"{report.worst().error_percent:.1f}% under "
          f"{report.worst().scenario_name}")
    if report.average_error() < 10:
        print("verdict: skeleton is safe to use for placement decisions")
    else:
        print("verdict: use a larger skeleton (see the flagged cells)")


if __name__ == "__main__":
    main()
