#!/usr/bin/env python
"""Projecting a skeleton to a different process count (§5 future work).

The paper: "Additional work is needed to scale predictions across
different numbers of processors and different size data sets." The
``repro.ext.remap`` extension implements the first-order projection
(offset-symmetric peers, strong-scaling work split) — this example
quantifies how well it does on a BSP workload and where it starts to
drift, measuring against *actually running* the application at the
target size.

Run:  python examples/scale_out_projection.py
"""

from repro import Cluster, trace_program
from repro.core.compress import compress_trace
from repro.core.scale import scale_signature
from repro.core.skeleton import skeleton_program
from repro.ext import remap_signature
from repro.sim import run_program
from repro.util.timebase import format_duration
from repro.workloads.synthetic import bsp_allreduce


def main() -> None:
    source_p = 4
    cluster4 = Cluster.uniform(source_p)
    app4 = bsp_allreduce(nprocs=source_p, supersteps=120, compute_secs=0.02,
                         reduce_bytes=64 * 1024)

    print(f"Tracing the application at {source_p} ranks ...")
    trace, ded4 = trace_program(app4, cluster4)
    signature = compress_trace(trace, target_ratio=2.0)
    print(f"  {source_p}-rank dedicated time: "
          f"{format_duration(ded4.elapsed)}\n")

    print(f"{'ranks':>6} {'projected':>12} {'actual':>12} {'error':>8}")
    for target_p in (2, 8, 16):
        remapped = remap_signature(signature, target_p)
        skeleton = skeleton_program(scale_signature(remapped, 1.0))
        cluster_t = Cluster.uniform(target_p)
        projected = run_program(skeleton, cluster_t).elapsed

        app_t = bsp_allreduce(nprocs=target_p, supersteps=120,
                              compute_secs=0.02 * source_p / target_p,
                              reduce_bytes=64 * 1024)
        actual = run_program(app_t, cluster_t).elapsed
        err = abs(projected - actual) / actual * 100
        print(f"{target_p:>6} {format_duration(projected):>12} "
              f"{format_duration(actual):>12} {err:>7.1f}%")

    print(
        "\nThe projection tracks the strong-scaling compute exactly; the "
        "drift comes from collective cost growing with log2(P) and from "
        "payload-scaling assumptions — the reasons the paper calls this "
        "future work. The extension exposes compute_scale/bytes_scale "
        "knobs to encode better application knowledge."
    )


if __name__ == "__main__":
    main()
