#!/usr/bin/env python
"""Quickstart: trace an application, build a performance skeleton,
predict its execution time under resource sharing.

This is the paper's workflow end to end on a small problem (CG,
Class W) so it finishes in seconds:

1. run the application on the dedicated (simulated) testbed with the
   tracing hook attached;
2. compress the trace and generate a skeleton ~1/10 the size;
3. measure the skeleton dedicated (-> measured scaling ratio);
4. run the skeleton under a sharing scenario — that short probe,
   multiplied by the ratio, is the prediction;
5. compare against actually running the application under the same
   scenario.

Run:  python examples/quickstart.py
"""

from repro import (
    SkeletonPredictor,
    build_skeleton,
    cpu_one_node,
    get_program,
    paper_testbed,
    run_program,
    trace_program,
)
from repro.util.timebase import format_duration


def main() -> None:
    cluster = paper_testbed()
    app = get_program("cg", "W", nprocs=4)

    print(f"Tracing {app.name} on the dedicated testbed ...")
    trace, dedicated = trace_program(app, cluster)
    print(f"  dedicated time : {format_duration(dedicated.elapsed)}")
    print(f"  MPI calls      : {trace.n_calls()}")

    target = dedicated.elapsed / 10.0
    print(f"\nBuilding a {format_duration(target)} skeleton (K ~ 10) ...")
    bundle = build_skeleton(trace, target_seconds=target)
    sig = bundle.signature
    print(f"  similarity threshold : {sig.threshold:.3f}")
    print(f"  compression          : {sig.trace_events} events -> "
          f"{sig.n_leaves()} entries ({sig.compression_ratio:.0f}x)")
    print(f"  smallest good        : "
          f"{format_duration(bundle.goodness.min_good_seconds)}")

    predictor = SkeletonPredictor(bundle.program, dedicated.elapsed, cluster)
    print(f"  skeleton dedicated   : "
          f"{format_duration(predictor.skeleton_dedicated_seconds)}")

    scenario = cpu_one_node()  # two competing processes on node 0
    print(f"\nScenario: {scenario.describe()}")
    prediction = predictor.predict(scenario)
    print(f"  skeleton probe  : {format_duration(prediction.probe_seconds)}")
    print(f"  predicted time  : "
          f"{format_duration(prediction.predicted_seconds)}")

    actual = run_program(app, cluster, scenario, seed=99).elapsed
    print(f"  measured time   : {format_duration(actual)}")
    print(f"  prediction error: {prediction.error_percent(actual):.1f}%")


if __name__ == "__main__":
    main()
