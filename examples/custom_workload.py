#!/usr/bin/env python
"""Build a skeleton for *your own* message-passing program.

Simulated programs are plain Python generators yielding ops
(:mod:`repro.sim.ops`), so any communication pattern can be modelled,
traced, and skeletonised. Here: a hybrid pipeline — a master scatters
work, workers iterate a stencil-style exchange, everything reduces at
the end — and we inspect the execution signature the compressor
recovers from its trace.

Run:  python examples/custom_workload.py
"""

from repro import build_skeleton, paper_testbed, trace_program
from repro.core.signature import EventStats, LoopNode
from repro.sim import (
    Allreduce,
    Barrier,
    Compute,
    Irecv,
    Isend,
    Program,
    Recv,
    Scatter,
    Send,
    Waitall,
)
from repro.util.timebase import format_duration


def my_app(rank: int, size: int):
    """A user application: scatter, iterate (compute + neighbour
    exchange + halving reduction), gather the result."""
    yield Scatter(root=0, nbytes=200_000)
    yield Barrier()
    left, right = (rank - 1) % size, (rank + 1) % size
    for _step in range(60):
        yield Compute(0.004 + 0.0005 * rank)  # imbalanced ranks
        r1 = yield Irecv(source=left, nbytes=16_384, tag=1)
        r2 = yield Isend(dest=right, nbytes=16_384, tag=1)
        yield Waitall((r1, r2))
        if _step % 10 == 9:
            yield Allreduce(nbytes=64)  # periodic convergence check
    if rank == 0:
        for src in range(1, size):
            yield Recv(source=src, nbytes=50_000, tag=2)
    else:
        yield Send(dest=0, nbytes=50_000, tag=2)


def describe(nodes, depth=0):
    for node in nodes:
        pad = "  " * depth
        if isinstance(node, LoopNode):
            print(f"{pad}loop x{node.count}:")
            describe(node.body, depth + 1)
        elif isinstance(node, EventStats):
            print(
                f"{pad}{node.call}(peer={node.peer}, "
                f"bytes={node.mean_bytes:.0f}) after "
                f"{format_duration(node.mean_gap)} compute"
            )


def main() -> None:
    cluster = paper_testbed()
    app = Program("my_app", 4, my_app)

    trace, dedicated = trace_program(app, cluster)
    print(f"{app.name}: {format_duration(dedicated.elapsed)} dedicated, "
          f"{trace.n_calls()} MPI calls\n")

    bundle = build_skeleton(trace, scaling_factor=6.0, warn=False)
    print(f"Execution signature of rank 0 (threshold "
          f"{bundle.signature.threshold:.2f}, "
          f"{bundle.signature.compression_ratio:.0f}x compression):\n")
    describe(bundle.signature.ranks[0].nodes)

    from repro.sim import run_program

    skel_time = run_program(bundle.program, cluster).elapsed
    print(f"\nSkeleton runs in {format_duration(skel_time)} "
          f"(application: {format_duration(dedicated.elapsed)}, K=6)")


if __name__ == "__main__":
    main()
