"""§5 extension experiment — wide-area validation.

The paper: "More experimentation, particularly on wide area networks
is needed for stronger validation." This bench runs the skeleton
workflow on a two-site grid (two LAN islands joined by a shared
100 Mbit / 5 ms WAN link) and checks the method's premise transfers:
skeletons built and probed on the WAN cluster predict WAN execution
under sharing, and cross-site placement effects are felt by the
skeleton just as by the application.
"""

from __future__ import annotations

import pytest

from repro.cluster import cpu_one_node
from repro.cluster.topology import two_site_grid
from repro.core import build_skeleton
from repro.predict import SkeletonPredictor
from repro.sim import run_program
from repro.trace import trace_program
from repro.workloads import get_program

BENCHES = ("cg", "mg", "is")


@pytest.fixture(scope="module")
def wan_cluster():
    return two_site_grid(nodes_per_site=2)


def test_wan_skeleton_prediction(benchmark, wan_cluster):
    def campaign():
        errors = {}
        for bench in BENCHES:
            prog = get_program(bench, "S", 4)
            trace, ded = trace_program(prog, wan_cluster)
            bundle = build_skeleton(trace, scaling_factor=4.0, warn=False)
            predictor = SkeletonPredictor(bundle.program, ded.elapsed,
                                          wan_cluster)
            scen = cpu_one_node(steady=True)
            actual = run_program(prog, wan_cluster, scen).elapsed
            errors[bench] = predictor.predict(scen).error_percent(actual)
        return errors

    errors = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print("\nWAN prediction errors (steady cpu-one-node): " + ", ".join(
        f"{b.upper()} {e:.1f}%" for b, e in errors.items()
    ))
    assert max(errors.values()) < 15.0


def test_wan_placement_sensitivity(benchmark, wan_cluster):
    """A skeleton feels cross-site placement: split across sites it
    runs slower than within one site, and its *application* does too,
    by a comparable factor."""
    prog = get_program("cg", "S", 4)
    trace, _ = trace_program(prog, wan_cluster, placement=[0, 1, 0, 1])
    bundle = build_skeleton(trace, scaling_factor=4.0, warn=False)

    def measure():
        within = run_program(
            bundle.program, wan_cluster, placement=[0, 1, 0, 1]
        ).elapsed
        across = run_program(
            bundle.program, wan_cluster, placement=[0, 2, 1, 3]
        ).elapsed
        return within, across

    within, across = benchmark.pedantic(measure, rounds=1, iterations=1)
    app_within = run_program(prog, wan_cluster, placement=[0, 1, 0, 1]).elapsed
    app_across = run_program(prog, wan_cluster, placement=[0, 2, 1, 3]).elapsed
    skel_factor = across / within
    app_factor = app_across / app_within
    print(f"\ncross-site slowdown: application {app_factor:.2f}x, "
          f"skeleton {skel_factor:.2f}x")
    assert app_factor > 1.5  # WAN placement really hurts CG
    assert skel_factor == pytest.approx(app_factor, rel=0.35)
