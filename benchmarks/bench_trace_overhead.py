"""§3.1 claim — "the execution time overhead of trace generation is
negligible, typically well under 1% of the execution time".

In the simulator, tracing is an observation hook, so the *simulated*
time is identical by construction (asserted); the measurable overhead
is the tracer's wall-clock cost per recorded call, which this bench
quantifies on the LU Class S trace (the call-heaviest benchmark).
"""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed
from repro.sim import run_program
from repro.trace import trace_program
from repro.workloads import get_program


@pytest.fixture(scope="module")
def lu_program():
    return get_program("lu", "S", 4), paper_testbed()


def test_traced_run_identical_simulated_time(benchmark, lu_program):
    program, cluster = lu_program
    untraced = run_program(program, cluster)

    def traced():
        trace, result = trace_program(program, cluster)
        return trace, result

    trace, result = benchmark.pedantic(traced, rounds=3, iterations=1)
    assert result.elapsed == pytest.approx(untraced.elapsed, rel=1e-12)
    assert trace.n_calls() > 1000
    print(
        f"\ntraced {trace.n_calls()} calls; simulated time identical "
        f"({result.elapsed:.4f}s) — observation-only hook"
    )


def test_untraced_reference(benchmark, lu_program):
    """Reference wall-clock of the same run without the tracer, for
    comparing the harness overhead (paper: well under 1% on real
    hardware; the simulator hook costs more relatively because the
    simulated 'CPU' is so much faster than real time)."""
    program, cluster = lu_program
    benchmark.pedantic(lambda: run_program(program, cluster), rounds=3,
                       iterations=1)
