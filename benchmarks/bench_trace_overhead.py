"""Trace-related overhead budgets.

Two distinct "tracing" costs are pinned here:

* **§3.1 claim** — "the execution time overhead of trace generation
  is negligible, typically well under 1% of the execution time". In
  the simulator, tracing is an observation hook, so the *simulated*
  time is identical by construction (asserted); the measurable
  overhead is the tracer's wall-clock cost per recorded call, which
  this bench quantifies on the LU Class S trace (the call-heaviest
  benchmark).
* **Request tracing** (:mod:`repro.obs.tracing`) — the serving
  stack's span instrumentation must cost < 5% on the warm predict
  path when *disabled* (the default outside the daemon), asserted on
  executed bytecode instructions (``sys.settrace`` opcode counting —
  deterministic, unlike wall time on shared hardware; same
  methodology as ``bench_obs_overhead``). The prediction payload must
  also stay byte-identical (canonical JSON) with tracing enabled:
  spans observe the pipeline, they never touch it.
"""

from __future__ import annotations

import sys

import pytest

from repro.cluster import paper_testbed
from repro.obs.tracing import Tracer, set_tracer
from repro.serve import PredictionService
from repro.sim import run_program
from repro.store import canonical_json
from repro.trace import trace_program
from repro.workloads import get_program


@pytest.fixture(scope="module")
def lu_program():
    return get_program("lu", "S", 4), paper_testbed()


def test_traced_run_identical_simulated_time(benchmark, lu_program):
    program, cluster = lu_program
    untraced = run_program(program, cluster)

    def traced():
        trace, result = trace_program(program, cluster)
        return trace, result

    trace, result = benchmark.pedantic(traced, rounds=3, iterations=1)
    assert result.elapsed == pytest.approx(untraced.elapsed, rel=1e-12)
    assert trace.n_calls() > 1000
    print(
        f"\ntraced {trace.n_calls()} calls; simulated time identical "
        f"({result.elapsed:.4f}s) — observation-only hook"
    )


def test_untraced_reference(benchmark, lu_program):
    """Reference wall-clock of the same run without the tracer, for
    comparing the harness overhead (paper: well under 1% on real
    hardware; the simulator hook costs more relatively because the
    simulated 'CPU' is so much faster than real time)."""
    program, cluster = lu_program
    benchmark.pedantic(lambda: run_program(program, cluster), rounds=3,
                       iterations=1)


# -- request-tracing (span) overhead on the serving hot path ------------

REQUEST = {"bench": "cg", "klass": "S", "nprocs": 4,
           "workload_seed": 12345, "target": 0.05,
           "scenario": "cpu-one-node", "env_seed": 0}


def _count_opcodes(thunk, tracer) -> tuple[int, object]:
    """Bytecode instructions executed by ``thunk()`` under ``tracer``
    (``None`` = the default disabled NULL tracer)."""
    count = 0

    def optracer(frame, event, arg):
        nonlocal count
        frame.f_trace_opcodes = True
        if event == "opcode":
            count += 1
        return optracer

    prev_tracer = set_tracer(tracer)
    prev_trace = sys.gettrace()
    sys.settrace(optracer)
    try:
        value = thunk()
    finally:
        sys.settrace(prev_trace)
        set_tracer(prev_tracer)
    return count, value


def test_span_tracing_overhead_budget(tmp_path):
    """Disabled request tracing costs < 5% opcodes on the warm predict
    path, and tracing (on or off) never changes the payload bytes."""
    service = PredictionService(cache_dir=str(tmp_path))
    warm = service.handle("predict", REQUEST)
    assert warm["ok"], warm
    # The request is now fully warm: every artifact is in the store,
    # so each handle() below reconstructs the same payload from cache.

    def predict():
        reply = service.handle("predict", REQUEST)
        assert reply["ok"], reply
        return reply["result"]

    base_ops, base_payload = _count_opcodes(predict, None)
    disabled_ops, disabled_payload = _count_opcodes(
        predict, Tracer(enabled=False, capacity=1)
    )
    enabled_ops, enabled_payload = _count_opcodes(
        predict, Tracer(enabled=True)
    )

    overhead_disabled = disabled_ops / base_ops - 1.0
    overhead_enabled = enabled_ops / base_ops - 1.0
    print(
        f"\nwarm predict: baseline {base_ops:,} opcodes | "
        f"tracing disabled {overhead_disabled:+.3%} | "
        f"tracing enabled {overhead_enabled:+.3%}"
    )

    assert overhead_disabled < 0.05, (
        f"disabled tracing cost {overhead_disabled:.2%} (budget < 5%)"
    )
    # Spans observe; the payload bytes must not notice them.
    base_json = canonical_json(base_payload)
    assert canonical_json(disabled_payload) == base_json
    assert canonical_json(enabled_payload) == base_json
