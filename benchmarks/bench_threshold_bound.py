"""§3.2 claim — "The maximum similarity threshold that was required
across the NAS benchmarks for meaningful experiments was always less
than .20 which we consider acceptable."

Checks every (benchmark × skeleton size) of the campaign.
"""

from __future__ import annotations


def test_threshold_bound(benchmark, results):
    def collect():
        return {
            (bench, target): results.skeletons[bench][f"{target:g}"]["threshold"]
            for bench in results.benchmarks()
            for target in results.targets()
        }

    thresholds = benchmark(collect)
    worst = max(thresholds.values())
    worst_case = max(thresholds, key=thresholds.get)
    print(f"\nmax similarity threshold used: {worst:.3f} "
          f"(at {worst_case}); paper bound: < 0.20")
    assert worst < 0.20
