"""Overhead budget of the observability layer (``repro.obs``).

The metrics registry is designed to be free when disabled: every
instrumentation site hoists a single ``enabled`` bool at construction
time and the default registry is the shared ``NULL_REGISTRY``.  This
bench pins two budgets against the same ping-pong workload as
``bench_engine_micro``:

* **disabled** — an explicitly installed disabled registry must cost
  (essentially) nothing versus the default null registry: < 1%.
* **enabled**  — full counter/histogram recording across the engine,
  matcher, and fluid allocator must stay under 5%.

Methodology: the budgets are asserted on *executed bytecode
instructions* (``sys.settrace`` opcode counting), not wall or CPU
time.  On the shared boxes this suite runs on, repeated timings of
bit-identical runs disagree by up to ±10% (scheduler preemption,
frequency scaling, cache pollution from neighbours), which cannot
resolve a 1% budget; opcode counts are exact, deterministic, and a
faithful proxy for the cost of pure-Python instrumentation (plain
attribute increments on the hot path — cheap opcodes — are if
anything *over*-weighted, making the assertion conservative).  A
direct CPU-time A/B is still printed for reference, labelled noisy.
"""

from __future__ import annotations

import sys
import time

from repro.cluster import paper_testbed
from repro.obs import MetricsRegistry, set_metrics
from repro.sim import Compute, Program, Recv, Send, run_program

N_MSGS = 150


def pingpong_program(n_msgs: int) -> Program:
    def gen(rank, size):
        for _ in range(n_msgs):
            if rank % 2 == 0:
                yield Send(dest=rank ^ 1, nbytes=2048, tag=1)
                yield Recv(source=rank ^ 1, tag=2)
            else:
                yield Recv(source=rank ^ 1, tag=1)
                yield Send(dest=rank ^ 1, nbytes=2048, tag=2)
            yield Compute(1e-5)

    return Program("pp", 4, gen)


def _count_opcodes(program, cluster, registry) -> int:
    """Bytecode instructions executed by one run under ``registry``."""
    count = 0

    def tracer(frame, event, arg):
        nonlocal count
        frame.f_trace_opcodes = True
        if event == "opcode":
            count += 1
        return tracer

    prev_reg = set_metrics(registry)
    prev_trace = sys.gettrace()
    sys.settrace(tracer)
    try:
        result = run_program(program, cluster)
    finally:
        sys.settrace(prev_trace)
        set_metrics(prev_reg)
    assert result.n_messages == 4 * N_MSGS
    return count


def _cpu_seconds(program, cluster, registry) -> float:
    prev = set_metrics(registry)
    try:
        t0 = time.process_time()
        run_program(program, cluster)
        return time.process_time() - t0
    finally:
        set_metrics(prev)


def test_metrics_overhead_budget():
    cluster = paper_testbed()
    program = pingpong_program(N_MSGS)
    run_program(program, cluster)  # warm lazy imports/caches

    base_ops = _count_opcodes(program, cluster, None)
    disabled_ops = _count_opcodes(
        program, cluster, MetricsRegistry(enabled=False)
    )
    enabled_ops = _count_opcodes(
        program, cluster, MetricsRegistry(enabled=True)
    )

    overhead_disabled = disabled_ops / base_ops - 1.0
    overhead_enabled = enabled_ops / base_ops - 1.0

    # Informational direct timing (noisy on shared hardware).
    base_t = min(_cpu_seconds(program, cluster, None) for _ in range(3))
    en_t = min(
        _cpu_seconds(program, cluster, MetricsRegistry(enabled=True))
        for _ in range(3)
    )
    print(
        f"\nbaseline {base_ops:,} opcodes | "
        f"disabled {overhead_disabled:+.3%} | "
        f"enabled {overhead_enabled:+.3%} | "
        f"direct CPU-time A/B (noisy): {en_t / base_t - 1:+.2%} "
        f"of {base_t * 1e3:.1f} ms"
    )

    # The disabled registry takes the identical code path as the null
    # default; anything here means instrumentation leaked into the
    # disabled mode.
    assert overhead_disabled < 0.01, (
        f"disabled metrics cost {overhead_disabled:.2%} (budget < 1%)"
    )
    assert overhead_enabled < 0.05, (
        f"enabled metrics cost {overhead_enabled:.2%} (budget < 5%)"
    )
