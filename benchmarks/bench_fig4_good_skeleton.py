"""Figure 4 — estimated minimum execution time of the smallest "good"
skeleton for each benchmark (§3.4).

Paper values: BT 1.01 s, CG 0.13 s, IS 3 s, LU 1.97 s, MG 0.34 s,
SP 0.34 s — flagging the 0.5/1 s BT skeletons, the 0.5/1/2 s IS
skeletons, and the 0.5/1 s LU skeletons as potentially "not good".
"""

from __future__ import annotations

from repro.experiments.figures import figure4_good_skeletons

#: The paper's Figure 4 numbers for shape comparison.
PAPER_MIN_GOOD = {"bt": 1.01, "cg": 0.13, "is": 3.0, "lu": 1.97,
                  "mg": 0.34, "sp": 0.34}


def test_fig4_good_skeletons(benchmark, results):
    table = benchmark(figure4_good_skeletons, results)
    print("\n" + table.render())

    any_target = f"{results.targets()[0]:g}"
    ours = {
        b: results.skeletons[b][any_target]["min_good"]
        for b in results.benchmarks()
    }
    print("\npaper vs measured (s): " + ", ".join(
        f"{b.upper()} {PAPER_MIN_GOOD[b]:.2f}/{ours[b]:.2f}"
        for b in results.benchmarks()
    ))

    # Shape: IS has the largest minimum among {CG, IS, SP}; CG the
    # smallest overall; BT/LU around 1-2 s as in the paper.
    assert ours["cg"] == min(ours.values())
    assert ours["is"] > ours["sp"]
    assert ours["is"] > ours["cg"]
    assert 0.5 < ours["bt"] < 2.0
    assert 1.0 < ours["lu"] < 3.0
    # Flag sets reproduce the paper for BT, IS, LU:
    flags = {
        b: {t for t in results.targets() if t < ours[b]}
        for b in results.benchmarks()
    }
    assert flags["bt"] == {0.5, 1.0}
    assert flags["is"] == {0.5, 1.0, 2.0}
    assert flags["lu"] == {0.5, 1.0}
    assert flags["cg"] == set()
    assert flags["sp"] == set()
