"""Micro-benchmarks of the simulation substrate itself: engine message
throughput and signature-compression speed. These set the cost context
for the evaluation campaign (all figure benches share one ~2-minute
campaign thanks to these rates)."""

from __future__ import annotations

import time

import pytest

from repro.cluster import paper_testbed
from repro.core.compress import CompressionOptions, compress_trace
from repro.sim import Compute, Program, Recv, Send, run_program
from repro.trace import trace_program
from repro.workloads import get_program


def pingpong_program(n_msgs: int) -> Program:
    def gen(rank, size):
        for _ in range(n_msgs):
            if rank % 2 == 0:
                yield Send(dest=rank ^ 1, nbytes=2048, tag=1)
                yield Recv(source=rank ^ 1, tag=2)
            else:
                yield Recv(source=rank ^ 1, tag=1)
                yield Send(dest=rank ^ 1, nbytes=2048, tag=2)
            yield Compute(1e-5)

    return Program("pp", 4, gen)


def test_engine_message_throughput(benchmark):
    cluster = paper_testbed()
    prog = pingpong_program(5000)
    result = benchmark.pedantic(
        lambda: run_program(prog, cluster), rounds=3, iterations=1
    )
    assert result.n_messages == 20_000
    rate = result.n_messages / benchmark.stats["mean"]
    print(f"\nengine throughput: {rate:,.0f} simulated messages/s")
    assert rate > 2_000  # generous floor; typical is >20k/s


def test_compression_throughput_lu(benchmark):
    """Compress the call-heaviest trace of the suite (LU.S: ~20k comm
    events) — clustering + loop folding end to end, through the default
    dendrogram search, with the legacy linear sweep timed alongside so
    the construction speedup stays visible in CI logs."""
    cluster = paper_testbed()
    trace, _ = trace_program(get_program("lu", "S", 4), cluster)
    sig = benchmark(compress_trace, trace, 2.0)
    events_per_s = sig.trace_events / benchmark.stats["mean"]
    print(f"\ncompression: {sig.trace_events} events at "
          f"{events_per_s:,.0f} events/s, ratio {sig.compression_ratio:.0f}x")

    # Cold full-sweep construction (unreachable Q): dendrogram search
    # vs. the paper-literal linear sweep, best of 3.
    timings = {}
    for mode in ("linear", "dendrogram"):
        options = CompressionOptions(search=mode)
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            compress_trace(trace, 1e9, options)
            best = min(best, time.perf_counter() - t0)
        timings[mode] = best
    speedup = timings["linear"] / timings["dendrogram"]
    print(
        f"cold sweep: legacy {sig.trace_events / timings['linear']:,.0f} "
        f"events/s, dendrogram "
        f"{sig.trace_events / timings['dendrogram']:,.0f} events/s "
        f"({speedup:.1f}x)"
    )
    assert sig.compression_ratio > 10
    assert speedup > 2.0  # generous floor; typical is ~8x on LU.S
