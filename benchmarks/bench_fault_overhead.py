"""Overhead budget of the fault-injection layer (``repro.faults``).

Fault support must be free when unused: the engine only constructs a
:class:`~repro.faults.inject.FaultInjector` when the scenario carries
a non-empty plan, and the per-message drop check is gated behind a
single pre-resolved bool. This bench pins three budgets against the
same ping-pong workload as ``bench_obs_overhead``:

* **no plan** — a scenario with ``fault_plan=None`` must cost exactly
  nothing versus the dedicated baseline (identical code path), and
  the run must be *bit-identical*;
* **empty plan** — ``FaultPlan()`` attached to the scenario skips
  injector construction entirely: < 0.5% and bit-identical results;
* **armed but idle** — a plan whose windows all start after the run
  ends pays only the arm-time timer pushes: < 2%.

Methodology: budgets are asserted on *executed bytecode instructions*
(``sys.settrace`` opcode counting), not wall or CPU time — repeated
timings of bit-identical runs on shared boxes disagree by more than
the budgets being asserted, while opcode counts are exact and
deterministic. See ``bench_obs_overhead`` for the full rationale.
"""

from __future__ import annotations

import sys

from repro.cluster import Scenario, paper_testbed
from repro.faults import FaultPlan, LinkDegrade, NodeSlowdown, RankStall
from repro.sim import Compute, Program, Recv, Send, run_program

N_MSGS = 150

#: Far beyond the ~20 simulated milliseconds the workload lasts.
FAR_FUTURE = 1e6


def pingpong_program(n_msgs: int) -> Program:
    def gen(rank, size):
        for _ in range(n_msgs):
            if rank % 2 == 0:
                yield Send(dest=rank ^ 1, nbytes=2048, tag=1)
                yield Recv(source=rank ^ 1, tag=2)
            else:
                yield Recv(source=rank ^ 1, tag=1)
                yield Send(dest=rank ^ 1, nbytes=2048, tag=2)
            yield Compute(1e-5)

    return Program("pp", 4, gen)


def idle_plan() -> FaultPlan:
    """Events armed as timers but scheduled after the run finishes."""
    return FaultPlan(
        name="idle",
        events=(
            RankStall(rank=0, t_start=FAR_FUTURE, duration=1.0),
            NodeSlowdown(node=1, t_start=FAR_FUTURE, duration=1.0, factor=0.5),
            LinkDegrade(node=2, t_start=FAR_FUTURE, duration=1.0, factor=0.5),
        ),
    )


def _count_opcodes(program, cluster, scenario) -> tuple[int, object]:
    """(bytecode instructions, RunResult) of one run under ``scenario``."""
    count = 0

    def tracer(frame, event, arg):
        nonlocal count
        frame.f_trace_opcodes = True
        if event == "opcode":
            count += 1
        return tracer

    prev_trace = sys.gettrace()
    sys.settrace(tracer)
    try:
        if scenario is None:
            result = run_program(program, cluster)
        else:
            result = run_program(program, cluster, scenario)
    finally:
        sys.settrace(prev_trace)
    assert result.n_messages == 4 * N_MSGS
    return count, result


def test_fault_overhead_budget():
    cluster = paper_testbed()
    program = pingpong_program(N_MSGS)
    run_program(program, cluster)  # warm lazy imports/caches
    # Warm the injector import path so the armed run isn't charged for
    # the one-time lazy `import repro.faults.inject`.
    run_program(
        program, cluster, Scenario(name="warm", fault_plan=idle_plan())
    )

    base_ops, base = _count_opcodes(program, cluster, None)
    noplan_ops, noplan = _count_opcodes(
        program, cluster, Scenario(name="noplan")
    )
    empty_ops, empty = _count_opcodes(
        program, cluster, Scenario(name="empty", fault_plan=FaultPlan())
    )
    armed_ops, armed = _count_opcodes(
        program, cluster, Scenario(name="idle", fault_plan=idle_plan())
    )

    overhead_noplan = noplan_ops / base_ops - 1.0
    overhead_empty = empty_ops / base_ops - 1.0
    overhead_armed = armed_ops / base_ops - 1.0
    print(
        f"\nbaseline {base_ops:,} opcodes | "
        f"no plan {overhead_noplan:+.3%} | "
        f"empty plan {overhead_empty:+.3%} | "
        f"armed idle {overhead_armed:+.3%}"
    )

    # Fault-free runs are not merely cheap — they are the same run.
    for other in (noplan, empty, armed):
        assert other.finish_times == base.finish_times
        assert other.n_messages == base.n_messages
    assert noplan.n_events == base.n_events
    assert empty.n_events == base.n_events

    assert overhead_noplan < 0.005, (
        f"plan-less scenario cost {overhead_noplan:.3%} (budget < 0.5%)"
    )
    assert overhead_empty < 0.005, (
        f"empty plan cost {overhead_empty:.3%} (budget < 0.5%)"
    )
    assert overhead_armed < 0.02, (
        f"armed idle plan cost {overhead_armed:.3%} (budget < 2%)"
    )
