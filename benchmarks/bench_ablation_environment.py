"""Ablation A3 — how much of the prediction error is environment noise?

Runs the full campaign twice: with the default *bursty* contention
models and with perfectly *steady* contention (same mean load, no
temporal variance). The error that remains in the steady campaign is
pure skeleton-construction error (clustering, averaging, remainder
scaling); the difference is measurement/sampling noise — the dominant
term, which also explains why the paper's short skeletons degrade.

Both campaigns are cached; the steady one costs ~2 minutes on first
run.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments import ExperimentConfig, run_experiments
from repro.experiments.report import overall_average_error

from conftest import CACHE_DIR


def test_ablation_environment_noise(benchmark, results):
    steady_config = ExperimentConfig(steady=True)

    def steady_campaign():
        return run_experiments(steady_config, cache_dir=CACHE_DIR,
                               verbose=True)

    steady = benchmark.pedantic(steady_campaign, rounds=1, iterations=1)

    noisy_err = overall_average_error(results)
    steady_err = overall_average_error(steady)
    print(
        f"\noverall average error: bursty {noisy_err:.2f}% vs "
        f"steady {steady_err:.2f}% -> environment noise contributes "
        f"{noisy_err - steady_err:.2f} points"
    )
    # Construction error alone is small; the bursty environment at
    # least doubles it.
    assert steady_err < noisy_err
    assert steady_err < 3.0

    # The size trend flattens when the environment is steady: short
    # skeletons are bad mainly because they under-sample contention.
    def by_size(res):
        benches = res.benchmarks()
        return {
            t: sum(res.skeleton_avg_error(b, t) for b in benches) / len(benches)
            for t in res.targets()
        }

    noisy_sizes = by_size(results)
    steady_sizes = by_size(steady)
    noisy_span = noisy_sizes[0.5] - noisy_sizes[10.0]
    steady_span = steady_sizes[0.5] - steady_sizes[10.0]
    print(f"0.5s-vs-10s error gap: bursty {noisy_span:.2f} pts, "
          f"steady {steady_span:.2f} pts")
    assert steady_span < noisy_span
