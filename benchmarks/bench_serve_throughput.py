"""Warm-hit serving throughput over the real TCP stack (``repro.serve``).

The service's contract is that a *warm* prediction — every pipeline
artifact already in the store — is a cache reconstruction, not a
simulation. This benchmark publishes one workload, then drives the
full stack (client socket → asyncio server → executor →
PredictionService → PipelineCache) with sequential and concurrent
warm requests, and records throughput and latency percentiles into
``BENCH_serve.json``.

Floors are deliberately loose (shared CI machines), but they pin the
order of magnitude: a warm request must be milliseconds, not a
simulation's tens-to-hundreds of milliseconds, and the server must
sustain tens of requests per second through a single connection-per-
call client.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path

from repro.serve import PredictionServer, PredictionService, ServiceClient

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

WORKLOAD = {"bench": "cg", "klass": "S", "nprocs": 4, "target": 0.05}
SCENARIO = "cpu-one-node"

SEQUENTIAL_CALLS = 60
CONCURRENT_CALLS = 60
FANOUT = 6

#: Loose CI-safe floors; the point is the order of magnitude.
WARM_RPS_FLOOR = 20.0
WARM_P99_CEILING_S = 0.5


class _ServerThread:
    def __init__(self, service: PredictionService):
        self.server = PredictionServer(
            service, port=0, max_pending=64, max_concurrency=4
        )
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.drain()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10)
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(15)


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def _drive(port: int, n: int, fanout: int) -> dict:
    latencies = []
    lock = threading.Lock()
    failures = []

    def one(seq: int) -> None:
        client = ServiceClient(port=port, timeout=30)
        t0 = time.perf_counter()
        reply = client.call(
            "predict", {"alias": "bench.cg", "scenario": SCENARIO}
        )
        dt = time.perf_counter() - t0
        with lock:
            latencies.append(dt)
            if not reply.get("ok"):
                failures.append(reply)

    t0 = time.perf_counter()
    if fanout <= 1:
        for i in range(n):
            one(i)
    else:
        batches = [list(range(i, n, fanout)) for i in range(fanout)]

        def run_batch(seqs):
            for s in seqs:
                one(s)

        threads = [
            threading.Thread(target=run_batch, args=(b,)) for b in batches
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    wall = time.perf_counter() - t0

    assert not failures, failures[:3]
    latencies.sort()
    return {
        "calls": n,
        "fanout": fanout,
        "wall_s": round(wall, 4),
        "rps": round(n / wall, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p90_ms": round(_percentile(latencies, 0.90) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
    }


def test_warm_serving_throughput(tmp_path):
    service = PredictionService(cache_dir=str(tmp_path / "store"))

    t0 = time.perf_counter()
    service.handle("publish", {"alias": "bench.cg", **WORKLOAD})
    publish_s = time.perf_counter() - t0

    # One cold predict fills the probe/run artifacts; everything after
    # is warm by construction.
    t0 = time.perf_counter()
    cold = service.handle(
        "predict", {"alias": "bench.cg", "scenario": SCENARIO}
    )
    cold_s = time.perf_counter() - t0
    assert cold["ok"], cold

    with _ServerThread(service) as st:
        port = st.server.port
        sequential = _drive(port, SEQUENTIAL_CALLS, fanout=1)
        concurrent = _drive(port, CONCURRENT_CALLS, fanout=FANOUT)

    payload = {
        "benchmark": "serve-throughput",
        "workload": WORKLOAD,
        "scenario": SCENARIO,
        "publish_s": round(publish_s, 4),
        "cold_predict_s": round(cold_s, 4),
        "sequential": sequential,
        "concurrent": concurrent,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(
        f"\nwarm serve: sequential {sequential['rps']} rps "
        f"(p99 {sequential['p99_ms']} ms) | "
        f"fanout-{FANOUT} {concurrent['rps']} rps "
        f"(p99 {concurrent['p99_ms']} ms)"
    )
    print(f"  wrote {OUT_PATH.name}")

    for label, stats in (("sequential", sequential),
                         ("concurrent", concurrent)):
        assert stats["rps"] >= WARM_RPS_FLOOR, (
            f"{label}: warm throughput {stats['rps']} rps below the "
            f"{WARM_RPS_FLOOR} rps floor"
        )
        assert stats["p99_ms"] / 1e3 <= WARM_P99_CEILING_S, (
            f"{label}: warm p99 {stats['p99_ms']} ms above the "
            f"{WARM_P99_CEILING_S * 1e3:.0f} ms ceiling"
        )
