"""Ablation A2 — mean compute durations versus distribution-preserving
reproduction.

The paper (§4.4): "While constructing a skeleton we set the duration
of compute operations within loops to their average duration across
iterations of the loop. A more accurate approach that considers
frequency distribution of the duration of compute events will be
taken in the future" — offered as the explanation for the higher
error in *unbalanced* scenarios.

With synchronising workloads, per-iteration variance matters: the
application's iteration time is the *maximum* over ranks, which
averaging flattens (E[max] > max[E]). This bench quantifies how much
of that the distribution-preserving gap model recovers on a
high-variance stencil.
"""

from __future__ import annotations

import pytest

from repro.cluster import cpu_one_node, paper_testbed
from repro.core import build_skeleton
from repro.ext import distribution_gap_model
from repro.predict import SkeletonPredictor
from repro.sim import run_program
from repro.trace import trace_program
from repro.workloads.synthetic import stencil2d


@pytest.fixture(scope="module")
def setup():
    cluster = paper_testbed()
    app = stencil2d(iterations=128, compute_secs=0.02, halo_bytes=64_000,
                    jitter=0.5, seed=17)
    trace, ded = trace_program(app, cluster)
    return cluster, app, trace, ded


def _prediction_error(cluster, app, trace, ded, gap_model):
    kwargs = {} if gap_model is None else {"gap_model": gap_model}
    bundle = build_skeleton(trace, scaling_factor=16.0, warn=False, **kwargs)
    predictor = SkeletonPredictor(bundle.program, ded.elapsed, cluster)
    scen = cpu_one_node(steady=True)  # unbalanced sharing, no env noise
    actual = run_program(app, cluster, scen).elapsed
    return predictor.predict(scen).error_percent(actual)


def test_ablation_compute_distribution(benchmark, setup):
    cluster, app, trace, ded = setup
    mean_err = _prediction_error(cluster, app, trace, ded, None)

    def with_distribution():
        return _prediction_error(
            cluster, app, trace, ded, distribution_gap_model
        )

    dist_err = benchmark.pedantic(with_distribution, rounds=2, iterations=1)
    print(
        f"\nprediction error under unbalanced CPU sharing: "
        f"mean-gap model {mean_err:.2f}%  "
        f"distribution-preserving {dist_err:.2f}%"
    )
    # The future-work model must not degrade prediction; typically it
    # improves it on high-variance workloads.
    assert dist_err <= mean_err + 1.0
