"""§3.4 frontier — "How short running can a skeleton be and still
generate reasonable performance estimates?"

Sweeps skeleton sizes for IS.B (the benchmark with the largest
dominant iteration) and checks the framework's own answer: sizes below
the estimated shortest good skeleton should show clearly degraded
accuracy, sizes above it should sit near the accuracy floor, and the
practical knee of the measured frontier should be at or above the
estimate.
"""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed
from repro.experiments.sweeps import sweep_skeleton_sizes
from repro.workloads import get_program

TARGETS = (10.0, 5.0, 2.0, 1.0, 0.5, 0.25)


def test_size_frontier_is(benchmark):
    cluster = paper_testbed()
    program = get_program("is", "B", 4)

    def run():
        return sweep_skeleton_sizes(program, cluster, TARGETS, seed=11)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + sweep.render())
    knee = sweep.knee()
    print(f"practical knee: {knee.target_seconds:g}s skeleton "
          f"({knee.average_error_percent:.1f}% avg error); "
          f"framework estimate: {sweep.min_good_seconds:.2f}s")

    good = [p for p in sweep.points if not p.flagged]
    bad = [p for p in sweep.points if p.flagged]
    assert good and bad
    avg_good = sum(p.average_error_percent for p in good) / len(good)
    avg_bad = sum(p.average_error_percent for p in bad) / len(bad)
    # Flagged (too-small) skeletons err clearly more on average.
    assert avg_bad > 1.5 * avg_good
