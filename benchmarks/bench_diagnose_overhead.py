"""Overhead budget of the diagnosis hook (``repro.diagnose``).

:class:`DiagnosisCollector` subclasses the timeline recorder and adds
wait-state classification (pending-edge scans on blocking calls), a
dependency-edge log fed by the engine's ``on_edge`` emission, and a
collective-alignment pass at finalize.  All of that must stay cheap
enough to leave on during campaigns, so this bench pins the
*incremental* cost of diagnosis over plain timeline recording at
< 5% on the same ping-pong workload as ``bench_obs_overhead``.

Methodology matches ``bench_obs_overhead``: budgets are asserted on
executed bytecode instructions (``sys.settrace`` opcode counting),
which are exact and deterministic where wall/CPU timings on shared
hardware are not; a direct CPU-time A/B is printed for reference
only.  The bench also re-asserts the zero-perturbation contract: the
hooked runs must produce a ``RunResult`` equal to the bare run.
"""

from __future__ import annotations

import sys
import time

from repro.cluster import paper_testbed
from repro.diagnose import DiagnosisCollector
from repro.obs import TimelineRecorder
from repro.sim import Compute, Program, Recv, Send, run_program

N_MSGS = 150

_DIAG = object()  # sentinel: build a DiagnosisCollector per run


def pingpong_program(n_msgs: int) -> Program:
    def gen(rank, size):
        for _ in range(n_msgs):
            if rank % 2 == 0:
                yield Send(dest=rank ^ 1, nbytes=2048, tag=1)
                yield Recv(source=rank ^ 1, tag=2)
            else:
                yield Recv(source=rank ^ 1, tag=1)
                yield Send(dest=rank ^ 1, nbytes=2048, tag=2)
            yield Compute(1e-5)

    return Program("pp", 4, gen)


def _make_hook(kind):
    if kind is None:
        return None
    if kind is _DIAG:
        return DiagnosisCollector()
    return TimelineRecorder()


def _count_opcodes(program, cluster, kind):
    """Bytecode instructions executed by one run under the hook."""
    count = 0

    def tracer(frame, event, arg):
        nonlocal count
        frame.f_trace_opcodes = True
        if event == "opcode":
            count += 1
        return tracer

    hook = _make_hook(kind)
    prev_trace = sys.gettrace()
    sys.settrace(tracer)
    try:
        result = run_program(program, cluster, hook=hook)
    finally:
        sys.settrace(prev_trace)
    assert result.n_messages == 4 * N_MSGS
    return count, result


def _cpu_seconds(program, cluster, kind) -> float:
    hook = _make_hook(kind)
    t0 = time.process_time()
    run_program(program, cluster, hook=hook)
    return time.process_time() - t0


def test_diagnosis_overhead_budget():
    cluster = paper_testbed()
    program = pingpong_program(N_MSGS)
    bare = run_program(program, cluster)  # warm lazy imports/caches

    base_ops, base_res = _count_opcodes(program, cluster, None)
    timeline_ops, tl_res = _count_opcodes(program, cluster, TimelineRecorder)
    diag_ops, diag_res = _count_opcodes(program, cluster, _DIAG)

    # Zero-perturbation contract: hooks observe, they never steer.
    assert tl_res == bare and diag_res == bare and base_res == bare

    over_timeline = timeline_ops / base_ops - 1.0
    over_diag = diag_ops / base_ops - 1.0
    incremental = diag_ops / timeline_ops - 1.0

    # Informational direct timing (noisy on shared hardware).
    base_t = min(_cpu_seconds(program, cluster, None) for _ in range(3))
    diag_t = min(_cpu_seconds(program, cluster, _DIAG) for _ in range(3))
    print(
        f"\nbaseline {base_ops:,} opcodes | "
        f"timeline {over_timeline:+.3%} | "
        f"diagnosis {over_diag:+.3%} | "
        f"incremental over timeline {incremental:+.3%} | "
        f"direct CPU-time A/B (noisy): {diag_t / base_t - 1:+.2%} "
        f"of {base_t * 1e3:.1f} ms"
    )

    assert incremental < 0.05, (
        f"diagnosis adds {incremental:.2%} over timeline recording "
        f"(budget < 5%)"
    )
