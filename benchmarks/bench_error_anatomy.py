"""Extension experiment — error anatomy (§3.3/§4.4 synthesis).

Decomposes the prediction error of a CG skeleton into trace-replay
fidelity, construction approximation, and environment sampling noise.
Expected shape: replay ≈ construction ≈ small; the single bursty probe
dominates; multi-probe averaging pulls it back toward the
construction floor.
"""

from __future__ import annotations

import pytest

from repro.cluster import cpu_one_node, paper_testbed
from repro.experiments.anatomy import analyze_error_sources
from repro.workloads import get_program


def test_error_anatomy(benchmark):
    cluster = paper_testbed()
    program = get_program("cg", "W", 4)

    def run():
        return analyze_error_sources(
            program,
            cluster,
            steady_scenario=cpu_one_node(steady=True),
            bursty_scenario=cpu_one_node(),
            target_seconds=0.5,
            n_probes=5,
            seed=3,
        )

    anatomy = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + anatomy.render())

    # Replay fidelity is near-exact; construction costs only a little
    # more; averaging probes must not be worse than the worst case.
    assert anatomy.replay_error < 3.0
    assert anatomy.construction_error < 8.0
    assert anatomy.multi_probe_error <= anatomy.single_probe_error + 3.0
