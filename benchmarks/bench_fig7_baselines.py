"""Figure 7 — min/avg/max prediction error under the combined sharing
scenario for every method: skeletons of each size, Class S benchmarks
as skeletons, and the suite-average-slowdown prediction.

Paper claims: "The performance skeleton approach ... is clearly better
than the other methods. Prediction with 0.5 second skeletons, which
roughly take as long to run as Class S benchmarks, is also clearly
superior" — Average prediction fails because applications degrade very
differently; Class S fails because tiny inputs do not reproduce
realistic execution behaviour.
"""

from __future__ import annotations

from repro.experiments.figures import figure7_baselines
from repro.util.stats import summarize_errors


def test_fig7_baselines(benchmark, results):
    scenario = "cpu+link-one"
    table = benchmark(figure7_baselines, results, scenario)
    print("\n" + table.render())

    benches = results.benchmarks()
    class_s = summarize_errors(
        results.class_s_error(b, scenario) for b in benches
    )
    average = summarize_errors(
        results.average_prediction_error(b, scenario) for b in benches
    )
    for target in results.targets():
        skel = summarize_errors(
            results.skeleton_error(b, target, scenario) for b in benches
        )
        # Every skeleton size beats both baselines on average error —
        # including the 0.5 s skeletons that cost as much as Class S.
        assert skel.average < class_s.average / 3
        assert skel.average < average.average / 2

    # And the baselines are catastrophically wrong somewhere (the
    # paper's Figure 7 maxima reach ~100%+).
    assert class_s.maximum > 50.0
    assert average.maximum > 50.0
