"""Ablation A1 — naive byte-scaling (the paper's §3.3 method) versus
latency-aware scale-down (its suggested improvement, §5 "The
implementation can be improved to better manage scaling down of
communication").

The weakness shows exactly where the paper says it does: operations
scaled as division remainders keep their full per-message latency. We
amplify the effect with a workload whose iteration count is *not*
divisible by K (large remainder) under the throttled-link scenario,
and compare how close each skeleton's dedicated time lands to the
ideal T_app/K — plus the resulting prediction errors.
"""

from __future__ import annotations

import pytest

from repro.cluster import link_all, paper_testbed
from repro.core import build_skeleton
from repro.ext import make_latency_aware_scaler
from repro.predict import SkeletonPredictor
from repro.sim import run_program
from repro.trace import trace_program
from repro.workloads.synthetic import stencil2d


@pytest.fixture(scope="module")
def setup():
    cluster = paper_testbed()
    # 67 iterations, K=32 -> quotient 2, remainder 3: a real remainder
    # whose messages get byte-scaled by ~0.09.
    app = stencil2d(iterations=67, compute_secs=0.02, halo_bytes=300_000)
    trace, ded = trace_program(app, cluster)
    return cluster, app, trace, ded


def _errors(cluster, app, trace, ded, comm_scaler):
    K = 32.0
    bundle = build_skeleton(trace, scaling_factor=K, warn=False,
                            comm_scaler=comm_scaler)
    skel_ded = run_program(bundle.program, cluster).elapsed
    size_err = abs(skel_ded - ded.elapsed / K) / (ded.elapsed / K) * 100
    predictor = SkeletonPredictor(bundle.program, ded.elapsed, cluster)
    scen = link_all(steady=True)
    actual = run_program(app, cluster, scen).elapsed
    pred_err = predictor.predict(scen).error_percent(actual)
    return size_err, pred_err


def test_ablation_latency_aware_scaling(benchmark, setup):
    cluster, app, trace, ded = setup

    naive_size, naive_pred = _errors(cluster, app, trace, ded, None)

    def aware():
        return _errors(
            cluster, app, trace, ded,
            make_latency_aware_scaler(cluster.network),
        )

    aware_size, aware_pred = benchmark.pedantic(aware, rounds=2, iterations=1)
    print(
        f"\nskeleton-size error vs T/K : naive {naive_size:.1f}%  "
        f"latency-aware {aware_size:.1f}%"
        f"\nprediction error (link-all): naive {naive_pred:.1f}%  "
        f"latency-aware {aware_pred:.1f}%"
    )
    # The latency-aware scale-down must not be worse at hitting the
    # ideal skeleton size (it compensates the unscalable latency).
    assert aware_size <= naive_size + 0.5
