"""Figure 2 — time spent in MPI vs computation, application vs its
10/5/2/1/0.5 s skeletons, for all six NAS benchmarks.

Paper claim: "the ratio between the computation and communication time
is broadly similar for the skeletons and the corresponding
application", with more variation for the smallest skeletons.
"""

from __future__ import annotations

from repro.experiments.figures import figure2_activity


def test_fig2_activity_breakdown(benchmark, results):
    table = benchmark(figure2_activity, results)
    print("\n" + table.render())

    # Shape assertions: for every benchmark, each skeleton's MPI share
    # is within a broad band of the application's (the paper's own
    # bars deviate by tens of points for the worst 0.5 s cases, so the
    # check is deliberately loose but must hold on average).
    deviations = []
    for bench in results.benchmarks():
        app_mpi = results.apps[bench]["mpi_percent"]
        for target in results.targets():
            skel_mpi = results.skeletons[bench][f"{target:g}"]["mpi_percent"]
            deviations.append(abs(skel_mpi - app_mpi))
    avg_dev = sum(deviations) / len(deviations)
    assert avg_dev < 10.0, f"average MPI-share deviation {avg_dev:.1f}pp"
    assert max(deviations) < 35.0
