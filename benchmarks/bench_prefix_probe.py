"""§2 claim — a skeleton is not "just run the application briefly".

"We would like to point out that skeleton execution is very different
from actually executing the application for a short time. The
skeleton should capture the total execution of an application in a
short time while the beginning part of an application is typically
not representative of the entire application."

Head-to-head: predict CG.B's time under a throttled link using (a) a
τ-second skeleton and (b) a τ-second *prefix probe* (the application's
own first τ seconds, measured the same way: probe time × dedicated
ratio). CG's start-up (matrix generation, no large exchanges) is not
representative, so the prefix probe misses the network sensitivity
the skeleton captures.
"""

from __future__ import annotations

import pytest

from repro.cluster import link_all, paper_testbed
from repro.core import build_skeleton
from repro.predict import SkeletonPredictor
from repro.sim import run_program
from repro.trace import trace_program
from repro.trace.slicing import slice_time
from repro.core.compress import compress_trace
from repro.core.scale import scale_signature
from repro.core.skeleton import skeleton_program
from repro.workloads import get_program

#: Probe budget. CG.B spends its first ~1.2 s in matrix generation
#: (pure compute, no large exchanges) — a 1 s prefix sees only that
#: unrepresentative start-up, which is precisely the paper's point.
TAU = 1.0


def test_prefix_probe_vs_skeleton(benchmark):
    cluster = paper_testbed()
    program = get_program("cg", "B", 4)
    trace, ded = trace_program(program, cluster)
    scen = link_all(steady=True)
    actual = run_program(program, cluster, scen).elapsed

    # (a) the real skeleton.
    bundle = build_skeleton(trace, target_seconds=TAU, warn=False)
    predictor = SkeletonPredictor(bundle.program, ded.elapsed, cluster)
    skel_err = predictor.predict(scen).error_percent(actual)

    # (b) the prefix probe: replay only the first TAU seconds of the
    # trace (exactly what running the application for TAU seconds
    # does), same measured-ratio protocol.
    def build_prefix():
        prefix_trace = slice_time(trace, 0.0, TAU)
        sig = compress_trace(prefix_trace, target_ratio=1.0)
        return skeleton_program(scale_signature(sig, 1.0))

    prefix_program = benchmark.pedantic(build_prefix, rounds=1, iterations=1)
    prefix_ded = run_program(prefix_program, cluster).elapsed
    prefix_probe = run_program(prefix_program, cluster, scen).elapsed
    prefix_prediction = prefix_probe * (ded.elapsed / prefix_ded)
    prefix_err = abs(prefix_prediction - actual) / actual * 100

    print(
        f"\npredicting CG.B under link-all "
        f"(actual {actual:.0f}s, dedicated {ded.elapsed:.0f}s):\n"
        f"  {TAU:g}s skeleton     : {skel_err:6.1f}% error\n"
        f"  {TAU:g}s prefix probe : {prefix_err:6.1f}% error"
    )
    # The skeleton captures whole-run behaviour; the unrepresentative
    # prefix misses the application's network sensitivity entirely.
    assert skel_err < 15.0
    assert prefix_err > 5 * skel_err
    assert prefix_err > 20.0
