"""Extension bench — prediction intervals from repeated probes.

On a bursty shared system a single skeleton probe samples one
contention window; repeated probes bound the range. This bench
measures interval coverage: how often the measured application time
falls inside the [min, max] of N probes, versus the single-probe point
estimate's error.
"""

from __future__ import annotations

import pytest

from repro.cluster import cpu_one_node, paper_testbed
from repro.core import build_skeleton
from repro.ext import predict_interval
from repro.predict import SkeletonPredictor
from repro.sim import run_program
from repro.trace import trace_program
from repro.util.rng import derive_seed
from repro.workloads import get_program

N_TRIALS = 6
N_PROBES = 6


@pytest.fixture(scope="module")
def predictor_setup():
    cluster = paper_testbed()
    prog = get_program("cg", "B", 4)
    trace, ded = trace_program(prog, cluster)
    # ~8 s probes: long enough to span several contention bursts.
    bundle = build_skeleton(trace, scaling_factor=32.0, warn=False)
    predictor = SkeletonPredictor(bundle.program, ded.elapsed, cluster)
    return cluster, prog, predictor


def test_interval_coverage(benchmark, predictor_setup):
    cluster, prog, predictor = predictor_setup
    scen = cpu_one_node()  # bursty

    def one_interval():
        return predict_interval(predictor, scen, n_probes=N_PROBES,
                                base_seed=1)

    interval = benchmark.pedantic(one_interval, rounds=1, iterations=1)

    covered = 0
    point_errors = []
    for trial in range(N_TRIALS):
        actual = run_program(
            prog, cluster, scen, seed=derive_seed(99, "trial", trial)
        ).elapsed
        if interval.covers(actual, margin=0.5):
            covered += 1
        point_errors.append(
            abs(interval.expected - actual) / actual * 100
        )
    coverage = covered / N_TRIALS
    print(
        f"\ninterval [{interval.low:.1f}, {interval.high:.1f}]s "
        f"(expected {interval.expected:.1f}s) covers "
        f"{coverage:.0%} of {N_TRIALS} runs; "
        f"mean point error {sum(point_errors) / len(point_errors):.1f}%; "
        f"probe cost {interval.probe_cost_seconds:.1f}s total"
    )
    assert coverage >= 0.5
    # Probing costs a fraction of one *shared* application run (which is
    # what the alternative to prediction would cost).
    assert interval.probe_cost_seconds < 0.3 * interval.expected
