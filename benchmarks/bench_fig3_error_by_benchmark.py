"""Figure 3 — prediction error per benchmark across skeleton sizes,
averaged over the five sharing scenarios.

Paper claims: overall average error is low (6.7% across everything);
"error is usually close to the highest for the smallest 0.5 second
skeletons" (~8% vs 5–6% for the larger sizes).
"""

from __future__ import annotations

from repro.experiments.figures import figure3_error_by_benchmark
from repro.experiments.report import overall_average_error


def test_fig3_error_by_benchmark(benchmark, results):
    table = benchmark(figure3_error_by_benchmark, results)
    print("\n" + table.render())

    overall = overall_average_error(results)
    print(f"\noverall average error: {overall:.1f}% (paper: 6.7%)")
    # Same order of magnitude as the paper's 6.7%.
    assert overall < 15.0

    targets = results.targets()
    avg_by_size = {
        t: sum(results.skeleton_avg_error(b, t) for b in results.benchmarks())
        / len(results.benchmarks())
        for t in targets
    }
    smallest = min(targets)
    largest = max(targets)
    # The smallest skeletons have the highest average error...
    assert avg_by_size[smallest] == max(avg_by_size.values())
    # ... and clearly worse than the biggest skeletons.
    assert avg_by_size[smallest] > 1.5 * avg_by_size[largest]
