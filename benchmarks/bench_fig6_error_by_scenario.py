"""Figure 6 — prediction error under each of the five sharing
scenarios, using the 10-second skeletons.

Paper claims: "prediction error is higher for scenarios that include
competing traffic" (network sharing beats the unscalable-latency
weakness of §3.3), and "in the case of CPU sharing only, the error is
higher for the 'unbalanced' sharing of a single node versus sharing of
all nodes".
"""

from __future__ import annotations

from repro.experiments.figures import figure6_error_by_scenario


def avg_err(results, target, scen):
    benches = results.benchmarks()
    return sum(
        results.skeleton_error(b, target, scen) for b in benches
    ) / len(benches)


def test_fig6_error_by_scenario(benchmark, results):
    target = max(results.targets())  # the 10 s skeletons
    table = benchmark(figure6_error_by_scenario, results, target)
    print("\n" + table.render())

    cpu_one = avg_err(results, target, "cpu-one-node")
    cpu_all = avg_err(results, target, "cpu-all-nodes")
    link_one = avg_err(results, target, "link-one")
    link_all = avg_err(results, target, "link-all")

    # Unbalanced CPU sharing errs more than balanced.
    assert cpu_one > cpu_all
    # Network-sharing scenarios err more than balanced CPU sharing.
    assert max(link_one, link_all) > cpu_all
