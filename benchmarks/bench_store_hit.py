"""Warm-cache campaign must recompute nothing (``repro.store``).

A campaign run against a cache directory that already holds every
artifact must serve **100% of store lookups as hits** — no misses, no
stage recomputation.  This pins the content-addressed keying scheme:
any accidental key instability (float formatting drift, dict-order
leakage, a forgotten parameter) shows up here as a miss on the second
invocation long before it shows up as wasted CPU on a real campaign.

The assertion is made on the store's own metrics (``store.hits`` /
``store.misses``, labelled by stage), plus the absence of the
compression-search counter ``construct.skeletons_built`` — the single
most expensive stage in the pipeline.
"""

from __future__ import annotations

import time

from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.obs.metrics import enabled_metrics

CONFIG = ExperimentConfig(
    benchmarks=("cg", "is"),
    klass="S",
    baseline_klass="S",
    skeleton_targets=(0.05,),
    steady=True,
)

# Stages whose artifacts the warm pass must serve from the store.
REQUIRED_HIT_STAGES = ("signature", "skeleton", "run", "trace")


def _stage_counts(snapshot: dict, metric: str) -> dict:
    entry = snapshot.get(metric)
    if entry is None:
        return {}
    return {
        label.split("=", 1)[1]: count
        for label, count in entry.get("labels", {}).items()
    }


def test_warm_campaign_is_all_hits(tmp_path):
    cache = tmp_path / "cache"

    t0 = time.perf_counter()
    with enabled_metrics() as m_cold:
        cold = ExperimentRunner(CONFIG, cache_dir=str(cache)).run()
    cold_s = time.perf_counter() - t0
    cold_snap = m_cold.snapshot()
    assert not cold.failures
    cold_misses = _stage_counts(cold_snap, "store.misses")
    assert cold_misses, "cold campaign should populate the store"

    t0 = time.perf_counter()
    with enabled_metrics() as m_warm:
        warm = ExperimentRunner(CONFIG, cache_dir=str(cache)).run(force=True)
    warm_s = time.perf_counter() - t0
    warm_snap = m_warm.snapshot()

    hits = _stage_counts(warm_snap, "store.hits")
    misses = _stage_counts(warm_snap, "store.misses")
    total_hits = sum(hits.values())
    total = total_hits + sum(misses.values())
    hit_rate = total_hits / total if total else 0.0
    print(
        f"\ncold {cold_s * 1e3:.0f} ms ({sum(cold_misses.values()):.0f} "
        f"misses) | warm {warm_s * 1e3:.0f} ms | "
        f"hit rate {hit_rate:.0%} across {hits}"
    )

    # 100% hits: not a single artifact recomputed on the warm pass.
    assert misses == {}, f"warm campaign recomputed stages: {misses}"
    for stage in REQUIRED_HIT_STAGES:
        assert hits.get(stage, 0) > 0, f"no store hits for stage {stage!r}"
    assert hit_rate == 1.0

    # The compression search — the pipeline's dominant cost — never
    # re-ran, and the warm results are byte-identical to the cold ones.
    assert "construct.skeletons_built" not in warm_snap
    assert warm.to_json() == cold.to_json()
