"""Shared fixtures for the benchmark harness.

The paper's full evaluation campaign (6 Class B benchmarks × 5
scenarios × 5 skeleton sizes + Class S baselines) is executed once and
cached under ``.repro_cache/`` at the repository root; every figure
bench reads from that shared campaign, so the first bench invocation
pays ~2 minutes and the rest are instant.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, run_experiments

#: Cache shared across bench invocations (repo root).
CACHE_DIR = str(Path(__file__).resolve().parent.parent / ".repro_cache")


@pytest.fixture(scope="session")
def results():
    """The full paper campaign (cached)."""
    return run_experiments(
        ExperimentConfig(), cache_dir=CACHE_DIR, verbose=True
    )
