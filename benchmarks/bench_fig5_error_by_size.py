"""Figure 5 — the Figure 3 error data grouped by skeleton size.

Paper claim: "the number of cases with a relatively large prediction
error increase with reduced skeleton sizes and are clearly higher for
0.5 second skeletons".
"""

from __future__ import annotations

from repro.experiments.figures import figure5_error_by_size

LARGE_ERROR = 6.0  # percent — "relatively large" in our campaign's scale


def test_fig5_error_by_size(benchmark, results):
    table = benchmark(figure5_error_by_size, results)
    print("\n" + table.render())

    targets = sorted(results.targets(), reverse=True)  # 10 .. 0.5
    benches = results.benchmarks()
    large_counts = []
    for t in targets:
        n = sum(
            1 for b in benches if results.skeleton_avg_error(b, t) > LARGE_ERROR
        )
        large_counts.append(n)
    print(f"\nbenchmarks with avg error > {LARGE_ERROR}% per size "
          f"{targets}: {large_counts}")
    # The 0.5 s column has at least as many large-error cases as any
    # other size, and more than the 10 s column.
    assert large_counts[-1] == max(large_counts)
    assert large_counts[-1] > large_counts[0]
