"""Cold-construction scaling benchmark: signature construction speed
across all six NAS Class S workloads, dendrogram search vs. the
paper-literal linear sweep.

This seeds the repo's performance trajectory for the construction
pipeline: every run writes a machine-readable ``BENCH_construct.json``
at the repository root (uploaded as a CI artifact by the perf-smoke
job) with cold events/s for both search strategies and the measured
speedup.

Two scenarios per workload:

* **single-pass** (Q = 2): the target ratio is met at threshold 0, so
  both searches pay exactly one cluster+fold pass — pins "no
  regression when there is nothing to save";
* **cold sweep** (Q = ∞): the target is unreachable, so the legacy
  sweep recomputes the full trace at every grid step until patience or
  the threshold cap, while the dendrogram search pays one pass per
  distinct clustering outcome — the paper's worst-case construction
  cost (up to ~26 passes) and the campaign's cold-cache cost.

Floor asserts are generous (≳30% regression fails, not noise): the
speedup floors are machine-independent ratios; the absolute events/s
floors are an order of magnitude below a 2024 laptop core.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster import paper_testbed
from repro.core.compress import CompressionOptions, compress_trace
from repro.trace import trace_program
from repro.workloads import get_program

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_construct.json"

WORKLOADS = ("bt", "cg", "is", "lu", "mg", "sp")

#: Unreachable compression target: forces the full threshold sweep.
SWEEP_TARGET = 1e9
#: Modest target met at threshold 0: a single cluster+fold pass.
SINGLE_PASS_TARGET = 2.0

REPEATS = 3

#: Generous floors. Speedups are same-machine ratios (noise-robust);
#: the ≥5x LU floor is the headline acceptance number. Sweep-heavy
#: point-to-point workloads (many grid steps on one plateau) must keep
#: most of it; collective/plateau-poor ones must merely never regress.
SPEEDUP_FLOORS = {"lu": 5.0, "bt": 3.0, "cg": 3.0, "sp": 3.0,
                  "mg": 2.0, "is": 1.5}
SINGLE_PASS_FLOOR = 0.6  # no-sweep case: parity modulo timing noise
EVENTS_PER_S_FLOOR = 3_000  # absolute cold-sweep floor, any workload


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def _bench_workload(name: str, cluster) -> dict:
    trace, _ = trace_program(get_program(name, "S", 4), cluster)
    linear = CompressionOptions(search="linear")
    dendro = CompressionOptions(search="dendrogram")
    sig = compress_trace(trace, SWEEP_TARGET, dendro)

    sweep_legacy = _best_of(
        lambda: compress_trace(trace, SWEEP_TARGET, linear)
    )
    sweep_dendro = _best_of(
        lambda: compress_trace(trace, SWEEP_TARGET, dendro)
    )
    single_legacy = _best_of(
        lambda: compress_trace(trace, SINGLE_PASS_TARGET, linear)
    )
    single_dendro = _best_of(
        lambda: compress_trace(trace, SINGLE_PASS_TARGET, dendro)
    )
    events = sig.trace_events
    return {
        "workload": name,
        "klass": "S",
        "nranks": 4,
        "trace_events": events,
        "threshold": sig.threshold,
        "compression_ratio": sig.compression_ratio,
        "sweep": {
            "legacy_s": sweep_legacy,
            "dendrogram_s": sweep_dendro,
            "legacy_events_per_s": events / sweep_legacy,
            "dendrogram_events_per_s": events / sweep_dendro,
            "speedup": sweep_legacy / sweep_dendro,
        },
        "single_pass": {
            "legacy_s": single_legacy,
            "dendrogram_s": single_dendro,
            "speedup": single_legacy / single_dendro,
        },
    }


def test_construct_scale_trajectory():
    cluster = paper_testbed()
    rows = [_bench_workload(name, cluster) for name in WORKLOADS]

    print("\ncold construction (Q=inf sweep), Class S x 4 ranks:")
    for row in rows:
        sweep = row["sweep"]
        print(
            f"  {row['workload']:>3}: {row['trace_events']:>6} events | "
            f"legacy {sweep['legacy_events_per_s']:>10,.0f} ev/s | "
            f"dendrogram {sweep['dendrogram_events_per_s']:>10,.0f} ev/s | "
            f"{sweep['speedup']:.1f}x "
            f"(single-pass {row['single_pass']['speedup']:.2f}x)"
        )

    payload = {
        "bench": "construct_scale",
        "schema": 1,
        "sweep_target_ratio": SWEEP_TARGET,
        "single_pass_target_ratio": SINGLE_PASS_TARGET,
        "repeats": REPEATS,
        "workloads": rows,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"  wrote {OUT_PATH.name}")

    for row in rows:
        name = row["workload"]
        assert row["sweep"]["speedup"] >= SPEEDUP_FLOORS[name], (
            f"{name}: cold-sweep speedup {row['sweep']['speedup']:.2f}x "
            f"below the {SPEEDUP_FLOORS[name]}x floor"
        )
        assert row["single_pass"]["speedup"] >= SINGLE_PASS_FLOOR, (
            f"{name}: single-pass construction regressed "
            f"({row['single_pass']['speedup']:.2f}x)"
        )
        assert row["sweep"]["dendrogram_events_per_s"] >= EVENTS_PER_S_FLOOR
