"""Extension experiment — the framework generalises beyond the paper's
six codes: skeleton prediction for FT (communication-volume-bound 3D
FFT) and EP (zero-communication), the two NPB codes the paper did not
evaluate. EP additionally exercises the degenerate no-repeating-
structure path of the §3.4 estimator."""

from __future__ import annotations

import pytest

from repro.cluster import cpu_all_nodes, link_one, paper_testbed
from repro.core import build_skeleton
from repro.predict import SkeletonPredictor
from repro.sim import run_program
from repro.trace import trace_program
from repro.workloads import get_program


def test_extended_suite_prediction(benchmark):
    cluster = paper_testbed()
    scenarios = [cpu_all_nodes(steady=True), link_one(steady=True)]

    def campaign():
        errors = {}
        for bench in ("ft", "ep"):
            prog = get_program(bench, "S", 4)
            trace, ded = trace_program(prog, cluster)
            bundle = build_skeleton(trace, scaling_factor=4.0, warn=False)
            predictor = SkeletonPredictor(bundle.program, ded.elapsed, cluster)
            for scen in scenarios:
                actual = run_program(prog, cluster, scen).elapsed
                err = predictor.predict(scen).error_percent(actual)
                errors[(bench, scen.name)] = err
        return errors

    errors = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print("\nextended-suite errors: " + ", ".join(
        f"{b}.{s}: {e:.1f}%" for (b, s), e in errors.items()
    ))
    assert max(errors.values()) < 12.0
    # The two codes stress opposite paths: FT slows hugely under the
    # throttled link, EP barely at all — and both skeletons track it.
    ft_prog = get_program("ft", "S", 4)
    ep_prog = get_program("ep", "S", 4)
    ft_slow = (
        run_program(ft_prog, cluster, link_one(steady=True)).elapsed
        / run_program(ft_prog, cluster).elapsed
    )
    ep_slow = (
        run_program(ep_prog, cluster, link_one(steady=True)).elapsed
        / run_program(ep_prog, cluster).elapsed
    )
    print(f"link-one slowdown: FT {ft_slow:.1f}x vs EP {ep_slow:.2f}x")
    assert ft_slow > 3.0
    assert ep_slow < 1.2
