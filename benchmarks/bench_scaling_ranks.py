"""Extension experiment — the method at larger process counts.

The paper evaluates on 4 nodes and lists scaling across processor
counts as future work (§5). Here we don't *project* (that is
`repro.ext.remap`) — we simply re-run the whole skeleton workflow at
8 ranks on a correspondingly larger cluster and check the prediction
quality holds. The campaign is cached like the main one (first run
~4 minutes: LU.B at 8 ranks moves ~1.5M messages per scenario).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_experiments
from repro.experiments.report import overall_average_error

from conftest import CACHE_DIR


def _config(n: int) -> ExperimentConfig:
    return ExperimentConfig(
        benchmarks=("cg", "is", "mg", "lu"),
        nprocs=n,
        nnodes=n,
        skeleton_targets=(10.0, 1.0),
    )


@pytest.mark.parametrize("nranks", [8])
def test_scaling_ranks(benchmark, nranks):
    def campaign():
        return run_experiments(
            _config(nranks), cache_dir=CACHE_DIR, verbose=True
        )

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)
    overall = overall_average_error(results)
    by_size = {
        t: sum(
            results.skeleton_avg_error(b, t) for b in results.benchmarks()
        ) / len(results.benchmarks())
        for t in results.targets()
    }
    print(f"\n{nranks} ranks: overall error {overall:.1f}% "
          f"(10s: {by_size[10.0]:.1f}%, 1s: {by_size[1.0]:.1f}%)")
    # Prediction quality holds at scale; small skeletons still degrade.
    assert overall < 15.0
    assert by_size[10.0] < 8.0
